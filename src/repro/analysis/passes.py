"""The lint pass pipeline (docs/ANALYSIS.md).

Each pass takes the bound program (and, where available, the DFA) and
appends diagnostics to a :class:`~repro.analysis.diagnostics.Report`:

* :func:`bounded_pass` — §2.5 walk in accumulate mode: tight loops
  (CEU-E101), unreachable statements (CEU-W301), parallels that can
  never rejoin (CEU-W304);
* :func:`liveness_pass` — internal events awaited-but-never-emitted
  (CEU-W302) and emitted-but-never-awaited (CEU-W303);
* :func:`conflict_pass` — *all* §2.6 conflicts (CEU-E201/E202/E203),
  deduplicated per source-location pair and annotated with a replayable
  witness to the shortest conflicting path;
* :func:`stuck_pass` — DFA states from which nothing can ever fire
  (CEU-W305), e.g. trails left awaiting forever after a ``par/or`` kill;
* :func:`bounds_pass` — the static resource bounds (CEU-I501).
"""

from __future__ import annotations

from typing import Optional

from ..dfa.actions import Conflict
from ..dfa.builder import Dfa
from ..lang import ast
from ..lang.errors import UNKNOWN_SPAN, SourceSpan
from ..sema.binder import BoundProgram
from ..sema.bounded import BoundedSink, analyze_bounded
from .bounds import compute_bounds
from .diagnostics import Report
from .witness import Witness, realize, shortest_paths


# --------------------------------------------------------------- bounded
class _CollectingSink(BoundedSink):
    def __init__(self, report: Report) -> None:
        self.report = report
        self.tight_loops = 0

    def tight_loop(self, loop: ast.Loop) -> None:
        self.tight_loops += 1
        self.report.add(
            "CEU-E101",
            "loop body has a path with neither `await` nor `break` — "
            "the reaction chain would not terminate (§2.5)",
            loop.span)

    def unreachable(self, stmt: ast.Stmt, count: int) -> None:
        more = f" (and {count - 1} following)" if count > 1 else ""
        self.report.add(
            "CEU-W301",
            f"unreachable statement{more}: control never flows past the "
            f"previous statement",
            stmt.span)

    def par_never_rejoins(self, par: ast.ParStmt) -> None:
        self.report.add(
            "CEU-W304",
            f"`par/{par.mode}` can never rejoin: no branch combination "
            f"completes or escapes it",
            par.span)


def bounded_pass(bound: BoundProgram, report: Report) -> int:
    """Returns the number of tight loops found (callers skip the DFA
    when non-zero — the abstract machine would not terminate either)."""
    sink = _CollectingSink(report)
    analyze_bounded(bound, sink)
    report.stages.append("bounded")
    return sink.tight_loops


# -------------------------------------------------------------- liveness
def liveness_pass(bound: BoundProgram, report: Report,
                  nodes=None) -> None:
    """``nodes`` may pass a pre-computed ``bound.program.walk()`` list
    so incremental callers pay for one tree walk, not several."""
    emits: dict[int, list[ast.Node]] = {}
    awaits: dict[int, list[ast.Node]] = {}
    for node in (bound.program.walk() if nodes is None else nodes):
        if isinstance(node, ast.EmitInt):
            sym = bound.event_of[node.nid]
            if sym.is_internal:
                emits.setdefault(sym.uid, []).append(node)
        elif isinstance(node, ast.AwaitInt):
            sym = bound.event_of[node.nid]
            if sym.is_internal:
                awaits.setdefault(sym.uid, []).append(node)
    for sym in bound.internal_events():
        sym_emits = emits.get(sym.uid, [])
        sym_awaits = awaits.get(sym.uid, [])
        if sym_awaits and not sym_emits:
            first = min(sym_awaits, key=lambda n: n.span.start.offset)
            report.add(
                "CEU-W302",
                f"internal event `{sym.name}` is awaited but never "
                f"emitted: these awaits can never wake",
                first.span,
                notes=[("also awaited here", n.span)
                       for n in sym_awaits[1:]])
        elif sym_emits and not sym_awaits:
            first = min(sym_emits, key=lambda n: n.span.start.offset)
            report.add(
                "CEU-W303",
                f"internal event `{sym.name}` is emitted but never "
                f"awaited: every occurrence is discarded (§2.2)",
                first.span,
                notes=[("also emitted here", n.span)
                       for n in sym_emits[1:]])
    report.stages.append("liveness")


# -------------------------------------------------------------- conflicts
_CONFLICT_CODE = {"var": "CEU-E201", "deref": "CEU-E201",
                  "cglobal": "CEU-E201", "evt": "CEU-E202",
                  "cfun": "CEU-E203"}


def _dedupe_key(c: Conflict) -> tuple:
    return (c.first.key, c.first.kind, c.first.span,
            c.second.kind, c.second.span)


def conflict_pass(source: str, bound: BoundProgram, dfa: Dfa,
                  report: Report, witnesses: bool = True,
                  verify: bool = True
                  ) -> list[tuple[str, Conflict, Optional["Witness"]]]:
    """Emit CEU-E20x diagnostics; returns the ``(code, conflict,
    witness)`` triples in emission order so the incremental analyzer can
    replay them with rebased spans."""
    if not dfa.conflicts:
        report.stages.append("conflicts")
        return []
    paths = shortest_paths(dfa) if witnesses else {}

    def path_of(c: Conflict) -> Optional[list[str]]:
        if c.trigger == "boot":
            return ["boot"]
        prefix = paths.get(c.state_index)
        return None if prefix is None else prefix + [c.trigger]

    # keep one representative per (location pair, key): the one whose
    # witness path is shortest
    best: dict[tuple, tuple[int, Conflict]] = {}
    for c in dfa.conflicts:
        path = path_of(c)
        length = len(path) if path is not None else 1 << 30
        key = _dedupe_key(c)
        if key not in best or length < best[key][0]:
            best[key] = (length, c)
    entries: list[tuple[str, Conflict, Optional[Witness]]] = []
    for _, conflict in sorted(
            best.values(),
            key=lambda item: (item[1].first.span.start.offset,
                              item[1].second.span.start.offset,
                              item[0])):
        code = _CONFLICT_CODE.get(conflict.first.key[0], "CEU-E201")
        witness: Optional[Witness] = None
        if witnesses:
            path = path_of(conflict)
            if path is None:
                witness = Witness(replayable=False,
                                  note="conflict state unreachable in "
                                       "the explored DFA")
            else:
                witness = realize(source, conflict, path, verify=verify)
        report.add(
            code, conflict.message(), conflict.first.span,
            notes=[(conflict.second.describe(), conflict.second.span)],
            witness=witness)
        entries.append((code, conflict, witness))
    report.stages.append("conflicts")
    return entries


# ------------------------------------------------------------------ stuck
def stuck_pass(bound: BoundProgram, dfa: Dfa,
               report: Report) -> list[tuple[str, Optional[int]]]:
    """Emit CEU-W305 diagnostics; returns ``(message, anchor_nid)``
    pairs (the nid of the node whose span anchors the diagnostic, or
    ``None`` for the file-level fallback span) for incremental replay."""
    node_of = {n.nid: n for n in bound.program.walk()}
    has_succ = {src for src, _, _ in dfa.edges}
    seen: set[tuple] = set()
    entries: list[tuple[str, Optional[int]]] = []
    for state in dfa.states:
        if state.terminal or state.index in has_succ:
            continue
        # nothing can ever fire from here, yet trails are still waiting
        fore_nids = tuple(sorted(
            entry[1] for _, entry in state.config if entry[0] == "fore"))
        if fore_nids in seen:
            continue
        seen.add(fore_nids)
        span = node_of[fore_nids[0]].span if fore_nids else None
        message = (f"trails are permanently stuck in DFA state "
                   f"#{state.index} ({state.describe(bound)}): no input, "
                   f"timer or async can ever fire again")
        report.add(
            "CEU-W305", message,
            span if span is not None
            else SourceSpan.point(0, 0, filename=report.filename))
        entries.append((message, fore_nids[0] if fore_nids else None))
    report.stages.append("stuck")
    return entries


# ----------------------------------------------------------------- bounds
def bounds_pass(bound: BoundProgram, dfa: Dfa, report: Report) -> None:
    bounds = compute_bounds(bound, dfa)
    report.bounds = bounds
    report.add("CEU-I501",
               f"static resource bounds: {bounds.summary()}",
               SourceSpan.point(0, 0, filename=report.filename),
               data=bounds.as_dict())
    report.stages.append("bounds")
