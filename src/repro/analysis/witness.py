"""Replayable witnesses for nondeterminism conflicts.

A conflict lives on a DFA transition: ``state_index`` is the source
state and ``trigger`` the label that fires the conflicting reaction.
The witness is the shortest external-stimulus sequence from boot to that
state plus the trigger itself — the paper's "covers exactly all possible
paths" made concrete.

The abstract labels are then *realized* against the reference VM: each
``event NAME`` becomes an input delivery, each ``timer``/``timeout``
label advances the clock to the next pending deadline.  A step-hook
monitor checks that the final stimulus actually executes both
conflicting accesses (by source line) in one reaction chain — when it
does, the witness is marked ``verified`` and its script replays via
``repro run FILE --inputs``.

Verified scripts are then **minimised** through the fuzz shrinker
(:func:`repro.fuzz.shrink.shrink_script` — causal slice, then ddmin)
under the same both-lines-execute predicate, so the stimulus a user is
asked to replay is as short as the conflict allows.  The DFA label path
is reported unchanged — it documents the abstract reachability argument;
only the concrete replay script shrinks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..dfa.actions import Conflict
from ..dfa.builder import Dfa
from ..obs.hooks import HookSubscriber

#: input values tried (in order) when realizing `event NAME` labels —
#: value-dependent branching may need a different datum to reach the
#: conflicting accesses
_VALUE_ATTEMPTS = (1, 0)


@dataclass
class Witness:
    """One concrete path to a reported conflict."""

    #: DFA edge labels from boot up to *and including* the trigger
    labels: list[str] = field(default_factory=list)
    #: concrete stimulus [("E", name, value) | ("T", abs_us)]
    script: list[tuple] = field(default_factory=list)
    #: False when a label has no concrete counterpart (e.g. asyncs)
    replayable: bool = True
    #: True when VM replay executed both conflicting accesses in the
    #: final reaction chain; None when verification was skipped
    verified: Optional[bool] = None
    note: str = ""

    def run_args(self) -> list[str]:
        """Positional inputs for ``repro run FILE <inputs>``."""
        args: list[str] = []
        for item in self.script:
            if item[0] == "E":
                args.append(f"{item[1]}={item[2]}")
            else:
                args.append(f"@{item[1]}us")
        return args

    def render(self) -> str:
        path = " -> ".join(self.labels) or "(boot)"
        if not self.replayable:
            return f"{path} [not replayable: {self.note}]"
        replay = " ".join(self.run_args()) or "(no inputs: boot conflict)"
        status = {True: "verified", False: "UNVERIFIED",
                  None: "unchecked"}[self.verified]
        return f"{path} | repro run: {replay} [{status}]"

    def as_dict(self) -> dict:
        return {
            "labels": list(self.labels),
            "script": [list(item) for item in self.script],
            "run_args": self.run_args(),
            "replayable": self.replayable,
            "verified": self.verified,
            "note": self.note,
        }


def shortest_paths(dfa: Dfa) -> dict[int, list[str]]:
    """BFS label paths from the virtual pre-boot state to every state."""
    adjacency: dict[int, list[tuple[str, int]]] = {}
    for src, label, dst in dfa.edges:
        adjacency.setdefault(src, []).append((label, dst))
    paths: dict[int, list[str]] = {}
    queue: deque[int] = deque()
    for label, dst in adjacency.get(-1, []):
        if dst not in paths:
            paths[dst] = [label]
            queue.append(dst)
    while queue:
        src = queue.popleft()
        for label, dst in adjacency.get(src, []):
            if dst not in paths:
                paths[dst] = paths[src] + [label]
                queue.append(dst)
    return paths


class _LineMonitor(HookSubscriber):
    """Records the set of executed source lines per drive step."""

    def __init__(self) -> None:
        self.steps: list[set[int]] = []

    def begin(self) -> None:
        self.steps.append(set())

    def on_step(self, trail, path, kind, line) -> None:
        if self.steps:
            self.steps[-1].add(line)


def _drive(program, monitor: _LineMonitor, labels: list[str],
           value: int) -> Optional[list[tuple]]:
    """Drive the VM along ``labels``; returns the concrete script, or
    ``None`` when a label cannot be realized."""
    script: list[tuple] = []
    for label in labels:
        monitor.begin()
        if label == "boot":
            program.start()
        elif label.startswith("event "):
            name = label[len("event "):]
            if program.done:
                return None
            program.send(name, value)
            script.append(("E", name, value))
        elif label.startswith(("timer ", "timeout@")):
            deadline = program.sched.next_deadline()
            if deadline is None or program.done:
                return None
            program.at(deadline)
            script.append(("T", deadline))
        elif label.startswith("async@"):
            # Program.send/at already drain asyncs (§4.5 tail-calls);
            # the completion reaction has happened by now
            continue
        else:
            return None
    return script


def realize(source: str, conflict: Conflict,
            labels: list[str], verify: bool = True) -> Witness:
    """Concretize an abstract label path and (optionally) verify it on
    the VM: the final stimulus must execute both conflicting accesses.
    """
    witness = Witness(labels=list(labels))
    if not verify:
        witness.script = _labels_to_nominal_script(labels)
        return witness
    from ..runtime.program import Program

    want = {conflict.first.span.start.line,
            conflict.second.span.start.line}
    last_error = ""
    for value in _VALUE_ATTEMPTS:
        try:
            program = Program(source, check=False)
            monitor = _LineMonitor()
            program.observe(monitor)
            script = _drive(program, monitor, labels, value)
        except Exception as err:  # realization must never kill the lint
            last_error = f"replay error: {err}"
            continue
        if script is None:
            last_error = "a path label has no concrete stimulus"
            continue
        hit = monitor.steps[-1] if monitor.steps else set()
        if want <= hit:
            witness.script = _minimise(source, script, want)
            witness.verified = True
            return witness
        witness.script = script[:]
        last_error = (f"final trigger executed lines "
                      f"{sorted(hit)}, wanted {sorted(want)}")
    witness.verified = False
    witness.note = last_error
    if not witness.script:
        witness.replayable = False
    return witness


def _script_hits(source: str, script: list, want: set[int]) -> bool:
    """Replay a candidate script: does its *final* stimulus execute both
    conflicting lines in one reaction chain?"""
    from ..runtime.program import Program

    program = Program(source, check=False)
    monitor = _LineMonitor()
    program.observe(monitor)
    monitor.begin()
    program.start()
    for item in script:
        if program.done:
            return False
        if item[0] == "T" and item[1] < program.clock:
            return False  # time cannot go backwards
        monitor.begin()
        if item[0] == "E":
            program.send(item[1], item[2])
        else:
            program.at(item[1])
    hit = monitor.steps[-1] if monitor.steps else set()
    return want <= hit


def _minimise(source: str, script: list, want: set[int]) -> list[tuple]:
    """Shrink a verified witness script (never the user's source)."""
    if len(script) < 2:
        return script[:]
    from ..fuzz.shrink import shrink_script

    try:
        result = shrink_script(
            source, script,
            lambda _src, candidate: _script_hits(source, candidate, want),
            max_tests=200)
        return [tuple(item) for item in result.script]
    except Exception:     # minimisation must never kill the lint
        return script[:]


def _labels_to_nominal_script(labels: list[str]) -> list[tuple]:
    """Best-effort script without running the VM (verify=False mode):
    events with value 1; timers cannot be resolved statically."""
    script: list[tuple] = []
    for label in labels:
        if label.startswith("event "):
            script.append(("E", label[len("event "):], 1))
    return script
