"""Céu language front end: lexer, parser, AST, pretty-printer."""

from . import ast
from .errors import (AnalysisBudgetExceeded, AsyncError, BindError,
                     BoundedError, CeuError, LexError, NondeterminismError,
                     ParseError, RuntimeCeuError, SourcePos, SourceSpan)
from .lexer import tokenize
from .parser import parse, parse_expression
from .pretty import pretty
from .time_units import TimeLiteral, us_to_text

__all__ = [
    "ast", "tokenize", "parse", "parse_expression", "pretty",
    "TimeLiteral", "us_to_text",
    "CeuError", "LexError", "ParseError", "BindError", "BoundedError",
    "AsyncError", "NondeterminismError", "RuntimeCeuError",
    "AnalysisBudgetExceeded", "SourcePos", "SourceSpan",
]
