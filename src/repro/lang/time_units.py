"""Wall-clock TIME literals (§2.3, Appendix A).

The grammar accepts ``(NUM h)? (NUM min)? (NUM s)? (NUM ms)? (NUM us)?``
with at least one component, e.g. ``1h35min``, ``500ms``, ``10us``.
Internally all wall-clock quantities are kept in microseconds — the finest
unit the language exposes — as plain Python integers, so arithmetic never
overflows or loses precision.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Microseconds per unit, in the fixed order the grammar requires.
UNIT_US: dict[str, int] = {
    "h": 3_600_000_000,
    "min": 60_000_000,
    "s": 1_000_000,
    "ms": 1_000,
    "us": 1,
}

#: Grammar-mandated ordering of the unit suffixes.
UNIT_ORDER: tuple[str, ...] = ("h", "min", "s", "ms", "us")


@dataclass(frozen=True, slots=True)
class TimeLiteral:
    """A parsed TIME literal with its component breakdown preserved.

    ``components`` maps unit suffix to its count (only units present in the
    source appear), so a pretty-printer can regenerate the exact literal.
    """

    us: int
    components: tuple[tuple[str, int], ...]

    def __str__(self) -> str:
        return "".join(f"{n}{u}" for u, n in self.components)


def from_components(pairs: list[tuple[str, int]]) -> TimeLiteral:
    """Build a :class:`TimeLiteral` from ``[(unit, count), ...]`` pairs.

    Pairs must already be in grammar order; the lexer guarantees that.
    """
    total = 0
    for unit, count in pairs:
        if unit not in UNIT_US:
            raise ValueError(f"unknown time unit {unit!r}")
        total += UNIT_US[unit] * count
    return TimeLiteral(total, tuple((u, n) for u, n in pairs))


def us_to_text(us: int) -> str:
    """Render a microsecond count as the shortest canonical TIME literal.

    Useful for traces and for generated-code comments; inverse-ish of the
    lexer (``us_to_text(parse('1h35min').us) == '1h35min'``).
    """
    if us == 0:
        return "0us"
    if us < 0:
        return f"-{us_to_text(-us)}"
    parts: list[str] = []
    rest = us
    for unit in UNIT_ORDER:
        size = UNIT_US[unit]
        count, rest = divmod(rest, size)
        if count:
            parts.append(f"{count}{unit}")
    return "".join(parts)
