"""Token definitions for the Céu lexer (grammar of Appendix A)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from .errors import SourceSpan


class TokKind(enum.Enum):
    KEYWORD = "keyword"       # reserved words, including par/or and par/and
    ID_EXT = "id_ext"         # begins with an uppercase letter (external event)
    ID_INT = "id_int"         # begins with a lowercase letter (var / internal event)
    ID_C = "id_c"             # begins with an underscore (C symbol)
    NUM = "num"               # integer literal (decimal / hex / char)
    STRING = "string"         # C string literal
    TIME = "time"             # wall-clock literal, e.g. 1h35min, 500ms
    SYM = "sym"               # operator / punctuation
    C_CODE = "c_code"         # raw body of a `C do ... end` block
    EOF = "eof"


#: Reserved words.  ``par/or`` and ``par/and`` are produced as single
#: composite keywords by the lexer so the parser never has to reassemble
#: them from three tokens.
KEYWORDS: frozenset[str] = frozenset({
    "input", "internal", "do", "end", "with", "loop", "break",
    "if", "then", "else", "await", "emit", "forever", "async",
    "return", "C", "pure", "deterministic", "call", "sizeof",
    "null", "nothing", "par", "par/or", "par/and", "output",
})

#: Multi-character symbols, longest first so maximal-munch scanning works.
SYMBOLS: tuple[str, ...] = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
    "+", "-", "*", "/", "%", "(", ")", "[", "]", "{", "}",
    ",", ";", "=", "<", ">", "!", "&", "|", "^", "~", ".", "?", ":",
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokKind
    text: str
    span: SourceSpan
    value: Any = field(default=None)  # int for NUM, TimeLiteral for TIME

    def is_kw(self, *words: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text in words

    def is_sym(self, *syms: str) -> bool:
        return self.kind is TokKind.SYM and self.text in syms

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}({self.text!r})"
