"""Abstract syntax tree for Céu (grammar of Appendix A).

Nodes use identity equality (``eq=False``): analyses key dictionaries by
node object, and two syntactically equal awaits in different program
positions must stay distinct (each owns its own *gate*, §4.3).

Every node carries:

* ``span`` — source region for diagnostics;
* ``nid``  — a stable integer assigned at construction, used by the flow
  graph, gate allocator and memory layout as a deterministic key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from .errors import SourceSpan, UNKNOWN_SPAN
from .time_units import TimeLiteral

_nid_counter = itertools.count(1)


@dataclass(eq=False)
class Node:
    span: SourceSpan = field(default=UNKNOWN_SPAN, kw_only=True)
    nid: int = field(default_factory=lambda: next(_nid_counter),
                     kw_only=True, compare=False)

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes, in source order."""
        for value in vars(self).values():
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item
                    elif isinstance(item, tuple):
                        for sub in item:
                            if isinstance(sub, Node):
                                yield sub

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children():
            yield from child.walk()


# --------------------------------------------------------------------------
# Types
# --------------------------------------------------------------------------

@dataclass(eq=False)
class TypeRef(Node):
    """A (possibly pointered) type name, e.g. ``int``, ``_message_t*``."""

    name: str = ""
    pointers: int = 0

    def __str__(self) -> str:
        return self.name + "*" * self.pointers

    @property
    def is_void(self) -> bool:
        return self.name == "void" and self.pointers == 0


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass(eq=False)
class Exp(Node):
    pass


@dataclass(eq=False)
class Num(Exp):
    value: int = 0


@dataclass(eq=False)
class Str(Exp):
    value: str = ""


@dataclass(eq=False)
class Null(Exp):
    pass


@dataclass(eq=False)
class NameInt(Exp):
    """Reference to a Céu variable (lowercase identifier)."""

    name: str = ""


@dataclass(eq=False)
class NameC(Exp):
    """Reference to a C symbol (underscore identifier); ``_foo`` → C ``foo``."""

    name: str = ""

    @property
    def c_name(self) -> str:
        return self.name[1:]


@dataclass(eq=False)
class Unop(Exp):
    op: str = ""
    operand: Exp = None  # type: ignore[assignment]


@dataclass(eq=False)
class Binop(Exp):
    op: str = ""
    left: Exp = None   # type: ignore[assignment]
    right: Exp = None  # type: ignore[assignment]


@dataclass(eq=False)
class Index(Exp):
    base: Exp = None   # type: ignore[assignment]
    index: Exp = None  # type: ignore[assignment]


@dataclass(eq=False)
class CallExp(Exp):
    func: Exp = None  # type: ignore[assignment]
    args: list[Exp] = field(default_factory=list)


@dataclass(eq=False)
class FieldAccess(Exp):
    base: Exp = None  # type: ignore[assignment]
    name: str = ""
    arrow: bool = False  # True for ``->``, False for ``.``

    @property
    def op(self) -> str:
        return "->" if self.arrow else "."


@dataclass(eq=False)
class Cast(Exp):
    type: TypeRef = None  # type: ignore[assignment]
    operand: Exp = None   # type: ignore[assignment]


@dataclass(eq=False)
class SizeOf(Exp):
    type: TypeRef = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass(eq=False)
class Stmt(Node):
    pass


@dataclass(eq=False)
class Block(Node):
    """A `;`-separated statement sequence (also a variable scope)."""

    stmts: list[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class Nothing(Stmt):
    pass


@dataclass(eq=False)
class DeclEvent(Stmt):
    """``input``/``internal``/``output`` event declaration."""

    kind: str = "input"  # "input" | "internal" | "output"
    type: TypeRef = None  # type: ignore[assignment]
    names: list[str] = field(default_factory=list)


#: rvalues: plain expressions or the statement-expressions the grammar
#: allows on the right of ``=`` (awaits, blocks, pars, asyncs).
SetExp = Union["Exp", "Stmt"]


@dataclass(eq=False)
class Declarator(Node):
    name: str = ""
    init: Optional[SetExp] = None


@dataclass(eq=False)
class DeclVar(Stmt):
    type: TypeRef = None  # type: ignore[assignment]
    array: Optional[Exp] = None  # fixed size for ``int[10] keys``
    decls: list[Declarator] = field(default_factory=list)


@dataclass(eq=False)
class CBlockStmt(Stmt):
    """``C do ... end`` — raw C passed through to the backend."""

    code: str = ""


@dataclass(eq=False)
class PureDecl(Stmt):
    names: list[str] = field(default_factory=list)


@dataclass(eq=False)
class DeterministicDecl(Stmt):
    names: list[str] = field(default_factory=list)


@dataclass(eq=False)
class AwaitExt(Stmt):
    """``await Event`` on an external input event; yields the event value."""

    event: str = ""


@dataclass(eq=False)
class AwaitInt(Stmt):
    """``await event`` on an internal event; yields the emitted value."""

    event: str = ""


@dataclass(eq=False)
class AwaitTime(Stmt):
    """``await 10min`` — literal wall-clock timeout."""

    time: TimeLiteral = None  # type: ignore[assignment]


@dataclass(eq=False)
class AwaitExp(Stmt):
    """``await (exp)`` — computed timeout, in microseconds."""

    exp: Exp = None  # type: ignore[assignment]


@dataclass(eq=False)
class AwaitForever(Stmt):
    """``await forever`` — an input event that never occurs."""


@dataclass(eq=False)
class EmitExt(Stmt):
    """``emit Event [= exp]`` — only legal inside ``async`` (simulation)."""

    event: str = ""
    value: Optional[Exp] = None


@dataclass(eq=False)
class EmitInt(Stmt):
    """``emit event [= exp]`` — internal event, stack policy (§2.2)."""

    event: str = ""
    value: Optional[Exp] = None


@dataclass(eq=False)
class EmitTime(Stmt):
    """``emit 10ms`` — advance wall-clock time; only legal inside ``async``."""

    time: TimeLiteral = None  # type: ignore[assignment]


@dataclass(eq=False)
class If(Stmt):
    cond: Exp = None  # type: ignore[assignment]
    then: Block = None  # type: ignore[assignment]
    orelse: Optional[Block] = None


@dataclass(eq=False)
class Loop(Stmt):
    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class Break(Stmt):
    pass


@dataclass(eq=False)
class ParStmt(Stmt):
    """``par`` / ``par/or`` / ``par/and`` composition."""

    mode: str = "par"  # "par" | "or" | "and"
    blocks: list[Block] = field(default_factory=list)

    @property
    def keyword(self) -> str:
        return {"par": "par", "or": "par/or", "and": "par/and"}[self.mode]


@dataclass(eq=False)
class CCallStmt(Stmt):
    """A bare C call used as a statement: ``_printf(...);``."""

    call: CallExp = None  # type: ignore[assignment]


@dataclass(eq=False)
class CallStmt(Stmt):
    """``call Exp`` — evaluate an expression for its side effects."""

    exp: Exp = None  # type: ignore[assignment]


@dataclass(eq=False)
class Assign(Stmt):
    target: Exp = None  # type: ignore[assignment]
    value: SetExp = None  # type: ignore[assignment]


@dataclass(eq=False)
class Return(Stmt):
    """``return [exp]`` — escapes the innermost value block (a ``do``,
    ``par`` or ``async`` used as a SetExp) or terminates the program."""

    value: Optional[Exp] = None


@dataclass(eq=False)
class DoBlock(Stmt):
    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class AsyncBlock(Stmt):
    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class Program(Node):
    body: Block = None  # type: ignore[assignment]
    filename: str = "<ceu>"


#: Nodes that may appear as the right-hand side of ``=`` besides plain Exp.
SETEXP_STMTS = (AwaitExt, AwaitInt, AwaitTime, AwaitExp,
                DoBlock, ParStmt, AsyncBlock)

#: All await statement forms.
AWAITS = (AwaitExt, AwaitInt, AwaitTime, AwaitExp, AwaitForever)


def renumber(root: Node) -> int:
    """Reassign ``nid``s over ``root``'s subtree in deterministic
    pre-order (1, 2, ...), returning the number of nodes.

    Node ids are allocated from a process-global counter at construction
    time, so two parses of the same source in one process get different
    ids.  Passes that key on ``nid`` across parses — the analysis engine
    and the incremental analyzer's replay maps — renumber first so ids
    are a pure function of program structure.
    """
    count = 0
    for count, node in enumerate(root.walk(), start=1):
        node.nid = count
    return count
