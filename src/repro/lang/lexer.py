"""Hand-written maximal-munch lexer for Céu.

Peculiarities relative to a generic C-family lexer:

* identifiers are classified by their first character (Appendix A):
  uppercase → external event, lowercase → variable / internal event,
  underscore → C symbol;
* TIME literals (``1h35min``, ``500ms``) are a single token; unit suffixes
  must appear in the grammar's fixed order with no interior whitespace;
* ``par/or`` and ``par/and`` are composite keywords;
* ``C do ... end`` captures its body verbatim as a single ``C_CODE`` token
  (the body is passed through to the C compiler untouched, §2.4);
* character literals are NUM tokens carrying the character code, matching
  C semantics (the demos compare against ``'#'`` etc.).
"""

from __future__ import annotations

from typing import Iterator

from . import time_units
from .errors import LexError, SourcePos, SourceSpan
from .tokens import KEYWORDS, SYMBOLS, TokKind, Token

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


class Lexer:
    """Tokenises one source buffer; use :func:`tokenize` for convenience."""

    def __init__(self, src: str, filename: str = "<ceu>"):
        self.src = src
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1
        #: spans of ``/* ... */`` comments, recorded as they are skipped.
        #: The incremental analyzer uses the multi-line ones to keep
        #: region extents from splitting a comment in half.  (The ``C do``
        #: lookahead re-scans trivia after a position restore, so the list
        #: may contain duplicates — consumers treat it as a set.)
        self.comments: list[SourceSpan] = []

    # ----------------------------------------------------------- plumbing
    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.src[i] if i < len(self.src) else ""

    def _advance(self, n: int = 1) -> str:
        text = self.src[self.pos:self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return text

    def _pos(self) -> SourcePos:
        return SourcePos(self.line, self.col, self.pos)

    def _span(self, start: SourcePos) -> SourceSpan:
        return SourceSpan(start, self._pos(), self.filename)

    def _error(self, msg: str) -> LexError:
        return LexError(msg, SourceSpan.point(self.line, self.col,
                                              self.pos, self.filename))

    # ------------------------------------------------------------ skipping
    def _skip_trivia(self) -> None:
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._pos()
                self._advance(2)
                while self.pos < len(self.src):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        self.comments.append(self._span(start))
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment",
                                   self._span(start))
            else:
                return

    # ------------------------------------------------------------ scanners
    def _scan_number_or_time(self) -> Token:
        start = self._pos()
        value = self._scan_int()
        # A number immediately followed by a unit suffix begins a TIME
        # literal; keep consuming NUM+unit pairs in grammar order.
        unit = self._peek_time_unit()
        if unit is None:
            return Token(TokKind.NUM, self.src[start.offset:self.pos],
                         self._span(start), value)
        pairs: list[tuple[str, int]] = []
        order = list(time_units.UNIT_ORDER)
        count = value
        while True:
            if unit not in order:
                raise self._error(
                    f"time units out of order near {unit!r} "
                    f"(expected one of {order})")
            # units must strictly descend: drop this unit and the ones
            # before it from the allowed set.
            order = order[order.index(unit) + 1:]
            pairs.append((unit, count))
            self._advance(len(unit))
            if not self._peek().isdigit():
                break
            count = self._scan_int()
            unit = self._peek_time_unit()
            if unit is None:
                raise self._error("number inside TIME literal lacks a unit")
        lit = time_units.from_components(pairs)
        return Token(TokKind.TIME, self.src[start.offset:self.pos],
                     self._span(start), lit)

    def _peek_time_unit(self) -> str | None:
        # longest-match among the unit suffixes, but only when not followed
        # by more identifier characters (so `10units` is not `10 us` + ...).
        for unit in ("min", "ms", "us", "h", "s"):
            if self.src.startswith(unit, self.pos):
                nxt = self._peek(len(unit))
                if not (nxt.isalnum() or nxt == "_"):
                    return unit
                # `1h35min` — unit followed by a digit continues the literal
                if nxt.isdigit():
                    return unit
        return None

    def _scan_int(self) -> int:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while (ch := self._peek()) and ch in "0123456789abcdefABCDEF":
                self._advance()
            if self.pos == start + 2:
                raise self._error("malformed hex literal")
            return int(self.src[start:self.pos], 16)
        while self._peek().isdigit():
            self._advance()
        return int(self.src[start:self.pos])

    def _scan_string(self) -> Token:
        start = self._pos()
        quote = self._advance()
        chars: list[str] = []
        while True:
            if self.pos >= len(self.src):
                raise LexError("unterminated string literal",
                               self._span(start))
            ch = self._advance()
            if ch == quote:
                break
            if ch == "\\":
                esc = self._advance()
                chars.append(_ESCAPES.get(esc, esc))
            elif ch == "\n":
                raise LexError("newline in string literal", self._span(start))
            else:
                chars.append(ch)
        text = "".join(chars)
        if quote == "'":
            if len(text) != 1:
                raise LexError("char literal must hold exactly one character",
                               self._span(start))
            return Token(TokKind.NUM, self.src[start.offset:self.pos],
                         self._span(start), ord(text))
        return Token(TokKind.STRING, self.src[start.offset:self.pos],
                     self._span(start), text)

    def _scan_word(self) -> Token:
        start = self._pos()
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        word = self.src[start.offset:self.pos]
        if word == "par" and self._peek() == "/":
            # composite keywords par/or and par/and
            save = (self.pos, self.line, self.col)
            self._advance()
            tail_start = self.pos
            while self._peek().isalpha():
                self._advance()
            tail = self.src[tail_start:self.pos]
            if tail in ("or", "and"):
                word = f"par/{tail}"
            else:
                self.pos, self.line, self.col = save
        if word in KEYWORDS:
            if word == "C":
                # `C` introduces a C block only when followed by `do`;
                # otherwise it is an ordinary external identifier (fig. 1
                # of the paper uses an input event named `C`).
                save = (self.pos, self.line, self.col)
                self._skip_trivia()
                is_block = (self.src.startswith("do", self.pos)
                            and not (self._peek(2).isalnum()
                                     or self._peek(2) == "_"))
                self.pos, self.line, self.col = save
                if is_block:
                    return self._scan_c_block(start)
                return Token(TokKind.ID_EXT, word, self._span(start))
            return Token(TokKind.KEYWORD, word, self._span(start))
        if word[0] == "_":
            kind = TokKind.ID_C
        elif word[0].isupper():
            kind = TokKind.ID_EXT
        else:
            kind = TokKind.ID_INT
        return Token(kind, word, self._span(start))

    def _scan_c_block(self, start: SourcePos) -> Token:
        """``C do <raw C code> end`` — capture the body verbatim.

        The terminating ``end`` is found at word boundaries outside C
        strings, chars and comments (the pragmatic rule the real compiler
        also relies on: C code rarely contains a bare identifier ``end``).
        """
        self._skip_trivia()
        kw = self._pos()
        if not self.src.startswith("do", self.pos):
            raise LexError("expected `do` after `C`", self._span(kw))
        self._advance(2)
        body_start = self.pos
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in "\"'":
                self._skip_c_string(ch)
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.src) and not (
                        self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                self._advance(2)
            elif (self.src.startswith("end", self.pos)
                  and not (self.pos > 0 and (self.src[self.pos - 1].isalnum()
                                             or self.src[self.pos - 1] == "_"))
                  and not (self._peek(3).isalnum() or self._peek(3) == "_")):
                body = self.src[body_start:self.pos]
                self._advance(3)
                return Token(TokKind.C_CODE, body, self._span(start), body)
            else:
                self._advance()
        raise LexError("unterminated `C do ... end` block",
                       SourceSpan(start, self._pos(), self.filename))

    def _skip_c_string(self, quote: str) -> None:
        self._advance()
        while self.pos < len(self.src):
            ch = self._advance()
            if ch == "\\":
                self._advance()
            elif ch == quote:
                return

    def _scan_symbol(self) -> Token:
        start = self._pos()
        for sym in SYMBOLS:
            if self.src.startswith(sym, self.pos):
                self._advance(len(sym))
                return Token(TokKind.SYM, sym, self._span(start))
        raise self._error(f"unexpected character {self._peek()!r}")

    # ---------------------------------------------------------------- API
    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.pos >= len(self.src):
                yield Token(TokKind.EOF, "",
                            SourceSpan.point(self.line, self.col, self.pos,
                                             self.filename))
                return
            ch = self._peek()
            if ch.isdigit():
                yield self._scan_number_or_time()
            elif ch in "\"'":
                yield self._scan_string()
            elif ch.isalpha() or ch == "_":
                yield self._scan_word()
            else:
                yield self._scan_symbol()


def tokenize(src: str, filename: str = "<ceu>") -> list[Token]:
    """Tokenise ``src`` to a list ending in an EOF token."""
    return list(Lexer(src, filename).tokens())
