"""Recursive-descent parser for Céu (grammar of Appendix A).

One liberty is taken relative to the paper's grammar, matching the paper's
own listings: the ``;`` statement terminator is treated as an optional
separator (the paper's examples write ``end`` with no trailing ``;``).

Operator precedence and associativity follow C, as the grammar demands.
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .errors import ParseError, SourceSpan
from .lexer import tokenize
from .tokens import TokKind, Token

# Binary precedence table, C-compatible (higher binds tighter).
_BINOP_PREC: dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_UNARY_OPS = ("!", "&", "-", "+", "~", "*")

#: keywords that terminate a block without being consumed by it
_BLOCK_ENDERS = ("end", "with", "else")


class Parser:
    def __init__(self, src: str, filename: str = "<ceu>",
                 tokens: Optional[list[Token]] = None,
                 track_extents: bool = False):
        self.toks = tokenize(src, filename) if tokens is None else tokens
        self.idx = 0
        self.filename = filename
        #: when ``track_extents`` is set, the exact token-index range
        #: ``[start, end)`` consumed by each statement of each block —
        #: the incremental analyzer derives region extents and its
        #: nested damage-recovery tree from these (plain statement spans
        #: only cover the first token for declarations).  Keyed by
        #: ``id(block)``; valid while the AST is alive.
        self.track_extents = track_extents
        self.toplevel_marks: list[tuple[ast.Stmt, int, int]] = []
        self.block_marks: dict[int, list[tuple[ast.Stmt, int, int]]] = {}
        self.block_ranges: dict[int, tuple[int, int]] = {}

    # ----------------------------------------------------------- plumbing
    def _peek(self, ahead: int = 0) -> Token:
        i = min(self.idx + ahead, len(self.toks) - 1)
        return self.toks[i]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokKind.EOF:
            self.idx += 1
        return tok

    def _error(self, msg: str, tok: Optional[Token] = None) -> ParseError:
        tok = tok or self._peek()
        return ParseError(f"{msg} (got {tok})", tok.span)

    def _expect_kw(self, word: str) -> Token:
        tok = self._peek()
        if not tok.is_kw(word):
            raise self._error(f"expected `{word}`")
        return self._next()

    def _expect_sym(self, sym: str) -> Token:
        tok = self._peek()
        if not tok.is_sym(sym):
            raise self._error(f"expected `{sym}`")
        return self._next()

    def _accept_sym(self, sym: str) -> bool:
        if self._peek().is_sym(sym):
            self._next()
            return True
        return False

    def _accept_kw(self, word: str) -> bool:
        if self._peek().is_kw(word):
            self._next()
            return True
        return False

    # --------------------------------------------------------------- entry
    def parse_program(self) -> ast.Program:
        body = self._parse_block(top=True)
        tok = self._peek()
        if tok.kind is not TokKind.EOF:
            raise self._error("unexpected trailing input")
        return ast.Program(body=body, filename=self.filename, span=body.span)

    # -------------------------------------------------------------- blocks
    def _parse_block(self, top: bool = False) -> ast.Block:
        stmts: list[ast.Stmt] = []
        start = self._peek().span
        marks: list[tuple[ast.Stmt, int, int]] = []
        block_start = self.idx
        while True:
            while self._accept_sym(";"):
                pass
            tok = self._peek()
            if tok.kind is TokKind.EOF:
                if not top:
                    raise self._error("unexpected end of input inside block")
                break
            if tok.is_kw(*_BLOCK_ENDERS):
                if top:
                    raise self._error(f"`{tok.text}` outside of a block")
                break
            if self.track_extents:
                mark_start = self.idx
                stmt = self._parse_stmt()
                marks.append((stmt, mark_start, self.idx))
                stmts.append(stmt)
            else:
                stmts.append(self._parse_stmt())
        span = start if not stmts else stmts[0].span.merge(stmts[-1].span)
        block = ast.Block(stmts=stmts, span=span)
        if self.track_extents:
            self.block_marks[id(block)] = marks
            self.block_ranges[id(block)] = (block_start, self.idx)
            if top:
                self.toplevel_marks = marks
        return block

    # ---------------------------------------------------------- statements
    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is TokKind.C_CODE:
            self._next()
            return ast.CBlockStmt(code=tok.value, span=tok.span)
        if tok.kind is TokKind.KEYWORD:
            word = tok.text
            if word == "nothing":
                self._next()
                return ast.Nothing(span=tok.span)
            if word in ("input", "output"):
                return self._parse_decl_event(word)
            if word == "internal":
                return self._parse_decl_event("internal")
            if word == "pure":
                return self._parse_annotation(ast.PureDecl)
            if word == "deterministic":
                return self._parse_annotation(ast.DeterministicDecl)
            if word == "await":
                return self._parse_await()
            if word == "emit":
                return self._parse_emit()
            if word == "if":
                return self._parse_if()
            if word == "loop":
                return self._parse_loop()
            if word == "break":
                self._next()
                return ast.Break(span=tok.span)
            if word in ("par", "par/or", "par/and"):
                return self._parse_par()
            if word == "do":
                return self._parse_do()
            if word == "async":
                return self._parse_async()
            if word == "return":
                return self._parse_return()
            if word == "call":
                self._next()
                exp = self._parse_exp()
                return ast.CallStmt(exp=exp, span=tok.span.merge(exp.span))
            raise self._error("unexpected keyword at statement position")
        if self._looks_like_decl():
            return self._parse_decl_var()
        # C call statement or assignment
        exp = self._parse_exp()
        if self._peek().is_sym("="):
            self._next()
            value = self._parse_setexp()
            return ast.Assign(target=exp, value=value,
                              span=tok.span.merge(value.span))
        if isinstance(exp, ast.CallExp):
            return ast.CCallStmt(call=exp, span=exp.span)
        raise self._error("expression statement must be a call or assignment",
                          tok)

    def _parse_decl_event(self, kind: str) -> ast.Stmt:
        start = self._next()  # keyword
        typ = self._parse_type()
        names: list[str] = []
        while True:
            tok = self._peek()
            if tok.kind not in (TokKind.ID_EXT, TokKind.ID_INT):
                raise self._error(f"expected event name in `{kind}` declaration")
            expect_ext = kind in ("input", "output")
            is_ext = tok.kind is TokKind.ID_EXT
            if expect_ext != is_ext:
                case = "uppercase" if expect_ext else "lowercase"
                raise self._error(
                    f"`{kind}` event `{tok.text}` must start with an "
                    f"{case} letter")
            names.append(self._next().text)
            if not self._accept_sym(","):
                break
        return ast.DeclEvent(kind=kind, type=typ, names=names,
                             span=start.span)

    def _parse_annotation(self, cls) -> ast.Stmt:
        start = self._next()
        names: list[str] = []
        while True:
            tok = self._peek()
            if tok.kind is not TokKind.ID_C:
                raise self._error("annotations expect C identifiers (`_f`)")
            names.append(self._next().text)
            if not self._accept_sym(","):
                break
        return cls(names=names, span=start.span)

    def _looks_like_decl(self) -> bool:
        """Decide `TYPE [*...] [\\[N\\]] name` vs an expression statement."""
        tok = self._peek()
        if tok.kind not in (TokKind.ID_INT, TokKind.ID_C):
            return False
        i = 1
        while self._peek(i).is_sym("*"):
            i += 1
        if self._peek(i).is_sym("["):
            # `int[10] keys` — scan past the bracketed size
            depth = 0
            while True:
                t = self._peek(i)
                if t.kind is TokKind.EOF:
                    return False
                if t.is_sym("["):
                    depth += 1
                elif t.is_sym("]"):
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
        return self._peek(i).kind is TokKind.ID_INT

    def _parse_type(self) -> ast.TypeRef:
        tok = self._peek()
        if tok.kind not in (TokKind.ID_INT, TokKind.ID_C):
            raise self._error("expected a type name")
        self._next()
        pointers = 0
        while self._peek().is_sym("*"):
            self._next()
            pointers += 1
        return ast.TypeRef(name=tok.text, pointers=pointers, span=tok.span)

    def _parse_decl_var(self) -> ast.Stmt:
        start = self._peek()
        typ = self._parse_type()
        array: Optional[ast.Exp] = None
        if self._accept_sym("["):
            array = self._parse_exp()
            self._expect_sym("]")
        decls: list[ast.Declarator] = []
        while True:
            name_tok = self._peek()
            if name_tok.kind is not TokKind.ID_INT:
                raise self._error("expected variable name")
            self._next()
            init: Optional[ast.Node] = None
            if self._accept_sym("="):
                init = self._parse_setexp()
            decls.append(ast.Declarator(name=name_tok.text, init=init,
                                        span=name_tok.span))
            if not self._accept_sym(","):
                break
        return ast.DeclVar(type=typ, array=array, decls=decls,
                           span=start.span)

    def _parse_await(self) -> ast.Stmt:
        start = self._expect_kw("await")
        tok = self._peek()
        if tok.is_kw("forever"):
            self._next()
            return ast.AwaitForever(span=start.span.merge(tok.span))
        if tok.kind is TokKind.ID_EXT:
            self._next()
            return ast.AwaitExt(event=tok.text,
                                span=start.span.merge(tok.span))
        if tok.kind is TokKind.ID_INT:
            self._next()
            return ast.AwaitInt(event=tok.text,
                                span=start.span.merge(tok.span))
        if tok.kind is TokKind.TIME:
            self._next()
            return ast.AwaitTime(time=tok.value,
                                 span=start.span.merge(tok.span))
        if tok.is_sym("("):
            self._next()
            exp = self._parse_exp()
            end = self._expect_sym(")")
            return ast.AwaitExp(exp=exp, span=start.span.merge(end.span))
        raise self._error("malformed await statement")

    def _parse_emit(self) -> ast.Stmt:
        start = self._expect_kw("emit")
        tok = self._peek()
        if tok.kind is TokKind.TIME:
            self._next()
            return ast.EmitTime(time=tok.value,
                                span=start.span.merge(tok.span))
        if tok.kind in (TokKind.ID_EXT, TokKind.ID_INT):
            self._next()
            value: Optional[ast.Exp] = None
            if self._accept_sym("="):
                value = self._parse_exp()
            cls = ast.EmitExt if tok.kind is TokKind.ID_EXT else ast.EmitInt
            return cls(event=tok.text, value=value,
                       span=start.span.merge(tok.span))
        raise self._error("malformed emit statement")

    def _parse_if(self) -> ast.Stmt:
        start = self._expect_kw("if")
        cond = self._parse_exp()
        self._expect_kw("then")
        then = self._parse_block()
        orelse: Optional[ast.Block] = None
        if self._accept_kw("else"):
            # note: no `else if` chain sugar — the Appendix-A grammar gives
            # `else` a full Block, so nested ifs need their own `end`
            orelse = self._parse_block()
        end = self._expect_kw("end")
        return ast.If(cond=cond, then=then, orelse=orelse,
                      span=start.span.merge(end.span))

    def _parse_loop(self) -> ast.Stmt:
        start = self._expect_kw("loop")
        self._expect_kw("do")
        body = self._parse_block()
        end = self._expect_kw("end")
        return ast.Loop(body=body, span=start.span.merge(end.span))

    def _parse_par(self) -> ast.Stmt:
        start = self._next()
        mode = {"par": "par", "par/or": "or", "par/and": "and"}[start.text]
        self._expect_kw("do")
        blocks = [self._parse_block()]
        while self._peek().is_kw("with"):
            self._next()
            blocks.append(self._parse_block())
        end = self._expect_kw("end")
        if len(blocks) < 2:
            raise ParseError("parallel statement needs at least two blocks",
                             start.span)
        return ast.ParStmt(mode=mode, blocks=blocks,
                           span=start.span.merge(end.span))

    def _parse_do(self) -> ast.Stmt:
        start = self._expect_kw("do")
        body = self._parse_block()
        end = self._expect_kw("end")
        return ast.DoBlock(body=body, span=start.span.merge(end.span))

    def _parse_async(self) -> ast.Stmt:
        start = self._expect_kw("async")
        self._expect_kw("do")
        body = self._parse_block()
        end = self._expect_kw("end")
        return ast.AsyncBlock(body=body, span=start.span.merge(end.span))

    def _parse_return(self) -> ast.Stmt:
        start = self._expect_kw("return")
        tok = self._peek()
        if (tok.is_sym(";") or tok.is_kw(*_BLOCK_ENDERS)
                or tok.kind is TokKind.EOF):
            return ast.Return(value=None, span=start.span)
        value = self._parse_exp()
        return ast.Return(value=value, span=start.span.merge(value.span))

    def _parse_setexp(self) -> ast.Node:
        tok = self._peek()
        if tok.is_kw("await"):
            return self._parse_await()
        if tok.is_kw("do"):
            return self._parse_do()
        if tok.is_kw("par", "par/or", "par/and"):
            return self._parse_par()
        if tok.is_kw("async"):
            return self._parse_async()
        return self._parse_exp()

    # --------------------------------------------------------- expressions
    def _parse_exp(self, min_prec: int = 1) -> ast.Exp:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind is not TokKind.SYM:
                return left
            prec = _BINOP_PREC.get(tok.text)
            if prec is None or prec < min_prec:
                return left
            self._next()
            right = self._parse_exp(prec + 1)
            left = ast.Binop(op=tok.text, left=left, right=right,
                             span=left.span.merge(right.span))

    def _parse_unary(self) -> ast.Exp:
        tok = self._peek()
        if tok.is_kw("sizeof"):
            self._next()
            self._expect_sym("<")
            typ = self._parse_type()
            end = self._expect_sym(">")
            return ast.SizeOf(type=typ, span=tok.span.merge(end.span))
        if tok.is_sym("<") and self._is_cast():
            self._next()
            typ = self._parse_type()
            self._expect_sym(">")
            operand = self._parse_unary()
            return ast.Cast(type=typ, operand=operand,
                            span=tok.span.merge(operand.span))
        if tok.kind is TokKind.SYM and tok.text in _UNARY_OPS:
            self._next()
            operand = self._parse_unary()
            return ast.Unop(op=tok.text, operand=operand,
                            span=tok.span.merge(operand.span))
        return self._parse_postfix()

    def _is_cast(self) -> bool:
        """Disambiguate `<type> exp` casts from `<` comparisons: a cast is
        `<` ID `*`* `>` at prefix position."""
        if self._peek(1).kind not in (TokKind.ID_INT, TokKind.ID_C):
            return False
        i = 2
        while self._peek(i).is_sym("*"):
            i += 1
        return self._peek(i).is_sym(">")

    def _parse_postfix(self) -> ast.Exp:
        exp = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_sym("["):
                self._next()
                idx = self._parse_exp()
                end = self._expect_sym("]")
                exp = ast.Index(base=exp, index=idx,
                                span=exp.span.merge(end.span))
            elif tok.is_sym("("):
                self._next()
                args: list[ast.Exp] = []
                if not self._peek().is_sym(")"):
                    args.append(self._parse_exp())
                    while self._accept_sym(","):
                        args.append(self._parse_exp())
                end = self._expect_sym(")")
                exp = ast.CallExp(func=exp, args=args,
                                  span=exp.span.merge(end.span))
            elif tok.is_sym(".", "->"):
                self._next()
                name_tok = self._next()
                if name_tok.kind not in (TokKind.ID_INT, TokKind.ID_EXT,
                                         TokKind.ID_C):
                    raise self._error("expected field name", name_tok)
                exp = ast.FieldAccess(base=exp, name=name_tok.text,
                                      arrow=tok.text == "->",
                                      span=exp.span.merge(name_tok.span))
            else:
                return exp

    def _parse_primary(self) -> ast.Exp:
        tok = self._next()
        if tok.kind is TokKind.NUM:
            return ast.Num(value=tok.value, span=tok.span)
        if tok.kind is TokKind.STRING:
            return ast.Str(value=tok.value, span=tok.span)
        if tok.is_kw("null"):
            return ast.Null(span=tok.span)
        if tok.kind is TokKind.ID_INT:
            return ast.NameInt(name=tok.text, span=tok.span)
        if tok.kind is TokKind.ID_C:
            return ast.NameC(name=tok.text, span=tok.span)
        if tok.is_sym("("):
            exp = self._parse_exp()
            self._expect_sym(")")
            return exp
        raise self._error("expected an expression", tok)


def parse(src: str, filename: str = "<ceu>") -> ast.Program:
    """Parse Céu source text into a :class:`repro.lang.ast.Program`."""
    return Parser(src, filename).parse_program()


def parse_expression(src: str) -> ast.Exp:
    """Parse a standalone expression (used by tests and tools)."""
    parser = Parser(src, "<exp>")
    exp = parser._parse_exp()
    if parser._peek().kind is not TokKind.EOF:
        raise parser._error("unexpected trailing input after expression")
    return exp
