"""Span rebasing for incremental re-analysis.

When an edit only moves a region of source up or down (and/or changes
the byte offset of its start), every span inside the region shifts by a
constant ``(dline, doffset)`` while columns stay put — edits are spliced
at line granularity, so a surviving region always starts at the same
column.  These helpers apply that shift to positions, spans, and whole
AST subtrees; :mod:`repro.analysis.incremental` uses them to replay
memoized diagnostics at their new coordinates.
"""

from __future__ import annotations

from . import ast
from .errors import SourcePos, SourceSpan


def shift_pos(pos: SourcePos, dline: int, doffset: int) -> SourcePos:
    if dline == 0 and doffset == 0:
        return pos
    return SourcePos(pos.line + dline, pos.col, pos.offset + doffset)


def shift_span(span: SourceSpan, dline: int, doffset: int) -> SourceSpan:
    if dline == 0 and doffset == 0:
        return span
    return SourceSpan(shift_pos(span.start, dline, doffset),
                      shift_pos(span.end, dline, doffset), span.filename)


def shift_subtree(node: ast.Node, dline: int, doffset: int) -> None:
    """Shift the spans of ``node`` and all its descendants in place."""
    if dline == 0 and doffset == 0:
        return
    for sub in node.walk():
        sub.span = shift_span(sub.span, dline, doffset)
