"""Pretty-printer: AST → canonical Céu source.

``parse(pretty(parse(src)))`` must produce a structurally identical tree —
the round-trip property checked by the test-suite (including under
hypothesis-generated expression trees).
"""

from __future__ import annotations

from . import ast
from .parser import _BINOP_PREC

_INDENT = "   "


def pretty(node: ast.Node) -> str:
    """Render a program, statement, block or expression as Céu source."""
    if isinstance(node, ast.Program):
        return _block(node.body, 0)
    if isinstance(node, ast.Block):
        return _block(node, 0)
    if isinstance(node, ast.Exp):
        return _exp(node)
    if isinstance(node, ast.Stmt):
        return _stmt(node, 0)
    raise TypeError(f"cannot pretty-print {type(node).__name__}")


def _block(block: ast.Block, level: int) -> str:
    return "\n".join(_stmt(s, level) for s in block.stmts)


def _ind(level: int) -> str:
    return _INDENT * level


def _stmt(s: ast.Stmt, level: int) -> str:
    pad = _ind(level)
    if isinstance(s, ast.Nothing):
        return f"{pad}nothing;"
    if isinstance(s, ast.DeclEvent):
        return f"{pad}{s.kind} {s.type} {', '.join(s.names)};"
    if isinstance(s, ast.DeclVar):
        arr = f"[{_exp(s.array)}]" if s.array is not None else ""
        decls = ", ".join(
            d.name if d.init is None else f"{d.name} = {_setexp(d.init, level)}"
            for d in s.decls)
        return f"{pad}{s.type}{arr} {decls};"
    if isinstance(s, ast.CBlockStmt):
        return f"{pad}C do{s.code}end"
    if isinstance(s, ast.PureDecl):
        return f"{pad}pure {', '.join(s.names)};"
    if isinstance(s, ast.DeterministicDecl):
        return f"{pad}deterministic {', '.join(s.names)};"
    if isinstance(s, ast.AwaitExt):
        return f"{pad}await {s.event};"
    if isinstance(s, ast.AwaitInt):
        return f"{pad}await {s.event};"
    if isinstance(s, ast.AwaitTime):
        return f"{pad}await {s.time};"
    if isinstance(s, ast.AwaitExp):
        return f"{pad}await ({_exp(s.exp)});"
    if isinstance(s, ast.AwaitForever):
        return f"{pad}await forever;"
    if isinstance(s, (ast.EmitExt, ast.EmitInt)):
        tail = "" if s.value is None else f" = {_exp(s.value)}"
        return f"{pad}emit {s.event}{tail};"
    if isinstance(s, ast.EmitTime):
        return f"{pad}emit {s.time};"
    if isinstance(s, ast.If):
        out = f"{pad}if {_exp(s.cond)} then\n{_block(s.then, level + 1)}"
        if s.orelse is not None:
            out += f"\n{pad}else\n{_block(s.orelse, level + 1)}"
        return out + f"\n{pad}end"
    if isinstance(s, ast.Loop):
        return (f"{pad}loop do\n{_block(s.body, level + 1)}\n{pad}end")
    if isinstance(s, ast.Break):
        return f"{pad}break;"
    if isinstance(s, ast.ParStmt):
        parts = [f"{pad}{s.keyword} do"]
        for i, blk in enumerate(s.blocks):
            if i > 0:
                parts.append(f"{pad}with")
            parts.append(_block(blk, level + 1))
        parts.append(f"{pad}end")
        return "\n".join(parts)
    if isinstance(s, ast.CCallStmt):
        return f"{pad}{_exp(s.call)};"
    if isinstance(s, ast.CallStmt):
        return f"{pad}call {_exp(s.exp)};"
    if isinstance(s, ast.Assign):
        return f"{pad}{_exp(s.target)} = {_setexp(s.value, level)};"
    if isinstance(s, ast.Return):
        if s.value is None:
            return f"{pad}return;"
        return f"{pad}return {_exp(s.value)};"
    if isinstance(s, ast.DoBlock):
        return f"{pad}do\n{_block(s.body, level + 1)}\n{pad}end"
    if isinstance(s, ast.AsyncBlock):
        return f"{pad}async do\n{_block(s.body, level + 1)}\n{pad}end"
    raise TypeError(f"cannot pretty-print statement {type(s).__name__}")


def _setexp(value: ast.Node, level: int) -> str:
    """Right-hand sides may be expressions or statement-expressions."""
    if isinstance(value, ast.Exp):
        return _exp(value)
    # statement-valued rvalue: render inline without the leading indent
    rendered = _stmt(value, level)
    stripped = rendered.lstrip()
    return stripped.rstrip(";")


# -------------------------------------------------------------- expressions

def _exp(e: ast.Exp, parent_prec: int = 0) -> str:
    if isinstance(e, ast.Num):
        return str(e.value)
    if isinstance(e, ast.Str):
        escaped = (e.value.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t"))
        return f'"{escaped}"'
    if isinstance(e, ast.Null):
        return "null"
    if isinstance(e, (ast.NameInt, ast.NameC)):
        return e.name
    if isinstance(e, ast.Unop):
        inner = _exp(e.operand, 11)
        sep = " " if e.op == "&" and inner.startswith("&") else ""
        text = f"{e.op}{sep}{inner}"  # `& &x`, never the `&&` token
        if parent_prec >= 12:  # operand of a postfix []/()/field chain
            return f"({text})"
        return text
    if isinstance(e, ast.Binop):
        prec = _BINOP_PREC[e.op]
        text = (f"{_exp(e.left, prec)} {e.op} {_exp(e.right, prec + 1)}")
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(e, ast.Index):
        return f"{_exp(e.base, 12)}[{_exp(e.index)}]"
    if isinstance(e, ast.CallExp):
        args = ", ".join(_exp(a) for a in e.args)
        return f"{_exp(e.func, 12)}({args})"
    if isinstance(e, ast.FieldAccess):
        return f"{_exp(e.base, 12)}{e.op}{e.name}"
    if isinstance(e, ast.Cast):
        text = f"<{e.type}> {_exp(e.operand, 11)}"
        if parent_prec >= 12:
            return f"({text})"
        return text
    if isinstance(e, ast.SizeOf):
        return f"sizeof <{e.type}>"
    raise TypeError(f"cannot pretty-print expression {type(e).__name__}")
