"""Diagnostics for the Céu front end and analyses.

Every compile-time failure in the reproduction is reported through one of
the exception classes below.  Each diagnostic carries a :class:`SourceSpan`
so callers (tests, the CLI examples, the benchmark harness) can render
precise ``file:line:col`` messages, mirroring the error style of the
original Céu compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, slots=True)
class SourcePos:
    """A position inside a source buffer (1-based line/column)."""

    line: int
    col: int
    offset: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.line}:{self.col}"


@dataclass(frozen=True, slots=True)
class SourceSpan:
    """A half-open region of source text ``[start, end)``."""

    start: SourcePos
    end: SourcePos
    filename: str = "<ceu>"

    @staticmethod
    def point(line: int, col: int, offset: int = 0,
              filename: str = "<ceu>") -> "SourceSpan":
        pos = SourcePos(line, col, offset)
        return SourceSpan(pos, pos, filename)

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """Smallest span covering both ``self`` and ``other``."""
        lo = self.start if self.start.offset <= other.start.offset else other.start
        hi = self.end if self.end.offset >= other.end.offset else other.end
        return SourceSpan(lo, hi, self.filename)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.filename}:{self.start}"


UNKNOWN_SPAN = SourceSpan.point(0, 0)


class CeuError(Exception):
    """Base class of all diagnostics produced by the reproduction."""

    kind = "error"

    def __init__(self, message: str, span: Optional[SourceSpan] = None):
        self.message = message
        self.span = span if span is not None else UNKNOWN_SPAN
        super().__init__(self.render())

    def render(self) -> str:
        if self.span is UNKNOWN_SPAN:
            return f"{self.kind}: {self.message}"
        return f"{self.span}: {self.kind}: {self.message}"


class LexError(CeuError):
    kind = "lex error"


class ParseError(CeuError):
    kind = "parse error"


class BindError(CeuError):
    """Name-resolution / declaration errors (undeclared ids, redeclaration,
    emitting an input event from synchronous code, ...)."""

    kind = "bind error"


class BoundedError(CeuError):
    """Violation of the bounded-execution rule of §2.5: a loop body has a
    path with neither ``await`` nor ``break``."""

    kind = "tight loop"


class AsyncError(CeuError):
    """Violation of the ``async`` restrictions of §2.7 (no parallel blocks,
    no awaits, no internal events, no writes to outer variables)."""

    kind = "async restriction"


class NondeterminismError(CeuError):
    """Raised by the temporal analysis (§2.6) when two concurrent trails may
    access a variable, an internal event, or non-annotated C functions in
    the same reaction chain."""

    kind = "nondeterminism"

    def __init__(self, message: str, span: Optional[SourceSpan] = None,
                 state: Optional[int] = None,
                 witness: Optional[tuple] = None):
        self.state = state
        self.witness = witness
        super().__init__(message, span)


class RuntimeCeuError(CeuError):
    """Errors raised while a program is executing on the reference VM."""

    kind = "runtime error"


class AnalysisBudgetExceeded(CeuError):
    """The DFA exploration hit its configured state budget.

    The conversion is exponential in the worst case (§6); the budget turns a
    blow-up into a diagnosable condition instead of a hang.
    """

    kind = "analysis budget exceeded"
