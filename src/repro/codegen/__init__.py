"""Code generation: static memory layout (§4.2), gate allocation (§4.3),
C emission (§4.4-4.5) and the ROM/RAM footprint model (§4.6)."""

from .cemit import CompiledC, UnsupportedForC, compile_to_c
from .gates import Gate, GateTable, build_gates
from .memlayout import HOST, TARGET16, MemLayout, TargetABI, build_layout
from .report import (CEU_RAM_KERNEL, CEU_ROM_KERNEL, Footprint,
                     ceu_footprint)

__all__ = ["compile_to_c", "CompiledC", "UnsupportedForC",
           "build_gates", "GateTable", "Gate",
           "build_layout", "MemLayout", "TargetABI", "TARGET16", "HOST",
           "ceu_footprint", "Footprint", "CEU_ROM_KERNEL", "CEU_RAM_KERNEL"]
