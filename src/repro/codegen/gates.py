"""Gate allocation (§4.3).

Every await statement owns a *gate* holding whether it is currently active
(and, in the generated C, which track to awake).  Gates of a parallel
composition's subtree occupy **consecutive slots**, so destroying the
composition's trails is one ``memset`` over the range — the paper's key
implementation trick.  The allocator extends the same idea to the two
bookkeeping gates the backend needs:

* a *join gate* per rejoining composition (its pending rejoin is cancelled
  by any outer kill that wipes the range containing it);
* an *escape gate* per ``break``/``return`` that crosses compositions
  (ditto for pending escapes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang import ast
from ..sema.binder import BoundProgram


@dataclass(frozen=True, slots=True)
class Gate:
    id: int
    kind: str                # "ext" | "intl" | "time" | "forever" |
    #                          "join" | "escape" | "async"
    node_nid: int
    event: Optional[str] = None


@dataclass
class GateTable:
    gates: list[Gate] = field(default_factory=list)
    by_await: dict[int, Gate] = field(default_factory=dict)   # await nid
    by_event: dict[str, list[Gate]] = field(default_factory=dict)
    join_gate: dict[int, Gate] = field(default_factory=dict)  # par nid
    escape_gate: dict[int, Gate] = field(default_factory=dict)  # break/ret nid
    #: par nid → (first_gate_id, last_gate_id) of each branch's subtree
    branch_ranges: dict[int, list[tuple[int, int]]] = field(
        default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.gates)

    def kill_range(self, par_nid: int) -> tuple[int, int]:
        """Union of the branch ranges — what an or-join memsets."""
        ranges = self.branch_ranges[par_nid]
        starts = [lo for lo, hi in ranges if lo <= hi]
        ends = [hi for lo, hi in ranges if lo <= hi]
        if not starts:
            return (0, -1)  # empty
        return (min(starts), max(ends))


class _GateAllocator:
    def __init__(self, bound: BoundProgram):
        self.bound = bound
        self.table = GateTable()

    def _new(self, kind: str, nid: int, event: Optional[str] = None) -> Gate:
        gate = Gate(len(self.table.gates), kind, nid, event)
        self.table.gates.append(gate)
        if event is not None:
            self.table.by_event.setdefault(event, []).append(gate)
        return gate

    def build(self) -> GateTable:
        self._block(self.bound.program.body)
        return self.table

    def _block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self._stmt(stmt)

    def _stmt(self, s: ast.Stmt) -> None:
        bound = self.bound
        if isinstance(s, ast.AwaitExt):
            sym = bound.event_of[s.nid]
            self.table.by_await[s.nid] = self._new("ext", s.nid, sym.name)
        elif isinstance(s, ast.AwaitInt):
            sym = bound.event_of[s.nid]
            self.table.by_await[s.nid] = self._new("intl", s.nid, sym.name)
        elif isinstance(s, (ast.AwaitTime, ast.AwaitExp)):
            self.table.by_await[s.nid] = self._new("time", s.nid)
        elif isinstance(s, ast.AwaitForever):
            self.table.by_await[s.nid] = self._new("forever", s.nid)
        elif isinstance(s, ast.AsyncBlock):
            self.table.by_await[s.nid] = self._new("async", s.nid)
        elif isinstance(s, (ast.Break, ast.Return)):
            target = self._escape_target(s)
            if target is not None and self._crosses_par(s, target):
                self.table.escape_gate[s.nid] = self._new("escape", s.nid)
        elif isinstance(s, ast.ParStmt):
            rejoins = (s.mode in ("or", "and")
                       or s.nid in bound.value_boundaries)
            if rejoins:
                # header slot: inside the enclosing region, before branches
                self.table.join_gate[s.nid] = self._new("join", s.nid)
            ranges: list[tuple[int, int]] = []
            for block in s.blocks:
                first = len(self.table.gates)
                self._block(block)
                ranges.append((first, len(self.table.gates) - 1))
            self.table.branch_ranges[s.nid] = ranges
        elif isinstance(s, ast.If):
            self._block(s.then)
            if s.orelse is not None:
                self._block(s.orelse)
        elif isinstance(s, ast.Loop):
            self._block(s.body)
        elif isinstance(s, ast.DoBlock):
            self._block(s.body)
        elif isinstance(s, ast.Assign) and not isinstance(s.value, ast.Exp):
            self._stmt(s.value)
        elif isinstance(s, ast.DeclVar):
            for d in s.decls:
                if d.init is not None and not isinstance(d.init, ast.Exp):
                    self._stmt(d.init)

    def _escape_target(self, s: ast.Stmt) -> Optional[ast.Node]:
        if isinstance(s, ast.Break):
            return self.bound.break_target[s.nid]
        return self.bound.ret_boundary.get(s.nid)

    def _crosses_par(self, node: ast.Node, target: ast.Node) -> bool:
        cur = self.bound.parent.get(node.nid)
        while cur is not None and cur is not target:
            if isinstance(cur, ast.ParStmt):
                return True
            if isinstance(cur, ast.AsyncBlock):
                return False  # escapes inside asyncs stay local
            cur = self.bound.parent.get(cur.nid)
        return isinstance(target, ast.ParStmt)


def build_gates(bound: BoundProgram) -> GateTable:
    """Allocate gates in DFS order (contiguous ranges per composition)."""
    return _GateAllocator(bound).build()
