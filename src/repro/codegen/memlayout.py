"""Static memory layout (§4.2).

Céu allocates a single flat byte vector sized for the maximum simultaneous
memory use.  Variables of trails in parallel must coexist (branch extents
are laid side by side), while statements in sequence reuse memory (sibling
scopes of ``if``/``do``/``loop`` constructs all start at the same offset
and the enclosing extent is their maximum).

The layout is parameterised by a target ABI: the 16-bit embedded targets of
the paper (ROM/RAM tables) and the host ABI used when the generated C is
compiled with the local toolchain for differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast
from ..sema.binder import BoundProgram
from ..sema.symbols import VarSymbol


@dataclass(frozen=True, slots=True)
class TargetABI:
    name: str
    sizes: dict
    pointer_size: int
    align: int

    def sizeof(self, t: ast.TypeRef) -> int:
        if t.pointers:
            return self.pointer_size
        return self.sizes.get(t.name, self.sizes["int"])


#: the paper's 16-bit microcontroller targets (§1: "16 bits platform")
TARGET16 = TargetABI("target16",
                     {"char": 1, "u8": 1, "s8": 1, "u16": 2, "s16": 2,
                      "short": 2, "int": 2, "u32": 4, "s32": 4, "long": 4,
                      "void": 1}, pointer_size=2, align=2)

#: the host ABI for gcc-compiled differential tests
HOST = TargetABI("host",
                 {"char": 1, "u8": 1, "s8": 1, "u16": 2, "s16": 2,
                  "short": 2, "int": 4, "u32": 4, "s32": 4, "long": 8,
                  "void": 1}, pointer_size=8, align=8)


@dataclass
class MemLayout:
    abi: TargetABI
    offsets: dict[VarSymbol, int] = field(default_factory=dict)
    sizes: dict[VarSymbol, int] = field(default_factory=dict)
    total: int = 0

    def offset(self, sym: VarSymbol) -> int:
        return self.offsets[sym]

    def size(self, sym: VarSymbol) -> int:
        return self.sizes[sym]

    def overlaps(self, a: VarSymbol, b: VarSymbol) -> bool:
        """Do two variables share bytes?  (Legal only when their lifetimes
        cannot coexist — checked by the property tests.)"""
        a0, a1 = self.offsets[a], self.offsets[a] + self.sizes[a]
        b0, b1 = self.offsets[b], self.offsets[b] + self.sizes[b]
        return a0 < b1 and b0 < a1


def _align(offset: int, alignment: int) -> int:
    rem = offset % alignment
    return offset if rem == 0 else offset + (alignment - rem)


class _LayoutBuilder:
    def __init__(self, bound: BoundProgram, abi: TargetABI):
        self.bound = bound
        self.abi = abi
        self.layout = MemLayout(abi)

    def build(self) -> MemLayout:
        extent = self._block(self.bound.program.body, 0)
        self.layout.total = extent
        return self.layout

    def _var_size(self, sym: VarSymbol) -> int:
        unit = self.abi.sizeof(sym.type)
        return unit * (sym.array_size or 1)

    def _block(self, block: ast.Block, base: int) -> int:
        # 1. direct variables coexist, packed from `base`
        cursor = base
        for stmt in block.stmts:
            for sym in self._decls_of(stmt):
                size = self._var_size(sym)
                cursor = _align(cursor, min(self.abi.align,
                                            self.abi.sizeof(sym.type)))
                self.layout.offsets[sym] = cursor
                self.layout.sizes[sym] = size
                cursor += size
        # 2. nested constructs: sequential share, parallel coexist
        extent = cursor
        for stmt in block.stmts:
            extent = max(extent, self._stmt(stmt, cursor))
        return extent

    def _decls_of(self, stmt: ast.Stmt) -> list[VarSymbol]:
        if isinstance(stmt, ast.DeclVar):
            return [self.bound.sym_of_decl[d.nid] for d in stmt.decls]
        return []

    def _stmt(self, s: ast.Stmt, base: int) -> int:
        if isinstance(s, ast.If):
            extent = self._block(s.then, base)
            if s.orelse is not None:
                extent = max(extent, self._block(s.orelse, base))
            return extent
        if isinstance(s, ast.Loop):
            return self._block(s.body, base)
        if isinstance(s, (ast.DoBlock, ast.AsyncBlock)):
            return self._block(s.body, base)
        if isinstance(s, ast.ParStmt):
            cursor = base
            for block in s.blocks:
                cursor = self._block(block, cursor)  # side by side
            return cursor
        if isinstance(s, ast.Assign) and not isinstance(s.value, ast.Exp):
            return self._stmt(s.value, base)
        if isinstance(s, ast.DeclVar):
            extent = base
            for d in s.decls:
                if d.init is not None and not isinstance(d.init, ast.Exp):
                    extent = max(extent, self._stmt(d.init, base))
            return extent
        return base


def build_layout(bound: BoundProgram, abi: TargetABI = TARGET16) -> MemLayout:
    """Compute the flat slot vector for a bound program."""
    return _LayoutBuilder(bound, abi).build()
