"""ROM/RAM footprint model (§4.6, Table `eval`; §1 footprint claim).

The paper measured avr-gcc binaries on motes; we have no AVR toolchain, so
the model reproduces the *mechanism* behind the paper's numbers instead:

* **ROM** = a fixed runtime kernel (scheduler, gate lists, timer handling —
  the paper reports ~4 KB) plus code proportional to the program's tracks;
* **RAM** = the static slot vector (memory layout, §4.2) + one gate per
  await + queues + timer slots (the paper reports ~100 B of kernel RAM).

Constants are calibrated once against the paper's Blink row and then held
fixed for every other program, so relative comparisons (the shrinking
Céu-vs-nesC gap of Table 1) are produced by the model, not fitted per row.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sema.binder import BoundProgram
from .cemit import CompiledC
from .gates import build_gates
from .memlayout import TARGET16, build_layout

#: calibrated once against the paper's Blink measurements (§4.6)
CEU_ROM_KERNEL = 3600      # scheduler + gates + timers + event dispatch
CEU_ROM_PER_TRACK = 46     # switch case + bookkeeping per track
CEU_RAM_KERNEL = 96        # queues, clock, scratch (§1: "100bytes of RAM")
CEU_RAM_PER_GATE = 4       # gate word + timer slot share (16-bit target)
CEU_RAM_PER_EVENT = 2      # event value slot


@dataclass(frozen=True, slots=True)
class Footprint:
    rom: int
    ram: int

    def __str__(self) -> str:
        return f"ROM={self.rom}B RAM={self.ram}B"


def ceu_footprint(bound: BoundProgram,
                  compiled: CompiledC | None = None) -> Footprint:
    """Estimated 16-bit-target footprint of a compiled Céu program."""
    layout = build_layout(bound, TARGET16)
    gates = build_gates(bound)
    if compiled is not None:
        n_tracks = compiled.n_tracks
    else:
        n_tracks = gates.count * 2 + 8
    rom = CEU_ROM_KERNEL + CEU_ROM_PER_TRACK * n_tracks
    ram = (CEU_RAM_KERNEL + layout.total
           + CEU_RAM_PER_GATE * gates.count
           + CEU_RAM_PER_EVENT * len(bound.events))
    return Footprint(rom, ram)
