"""C code generation (§4.4–4.5).

The emitter lowers a bound program to a single portable C99 file built
around the paper's scheme:

* **tracks** — atomic code segments between awaits, realised as ``case``
  labels of one big ``switch`` inside ``ceu_track``; control-flow re-entry
  uses ``track = L; goto _SWITCH;`` exactly as the paper shows;
* **gates** — the ``GATES[]`` vector (allocated by
  :mod:`repro.codegen.gates`); awaiting arms a gate with the resume label,
  awaking clears it; killing a composition is one ``memset`` over its
  contiguous range.  Pending rejoins and cross-composition escapes use
  gates too, so outer kills cancel them for free;
* **memory** — the flat ``MEM[]`` byte vector laid out by
  :mod:`repro.codegen.memlayout`; variables are ``#define`` accessors;
* **API** — ``ceu_go_init`` / ``ceu_go_event`` / ``ceu_go_time`` with the
  residual-delta timer semantics of §2.3 (deadlines chain from the logical
  expiry, not from the observed clock);
* **internal events** — ``ceu_bcast`` awakes the armed gates by direct
  recursive calls into ``ceu_track``: the C call stack *is* the §2.2 stack
  policy.

``async`` blocks are not lowered (the reference VM covers them; on real
deployments they are the platform binding's job) — programs containing them
are rejected with :class:`UnsupportedForC`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from ..lang.errors import CeuError
from ..sema.binder import BoundProgram
from .gates import GateTable, build_gates
from .memlayout import HOST, MemLayout, TargetABI, build_layout


class UnsupportedForC(CeuError):
    kind = "unsupported for C backend"


_TYPEMAP = {"int": "int", "void": "int", "u8": "unsigned char",
            "s8": "signed char", "u16": "unsigned short",
            "s16": "short", "u32": "unsigned int", "s32": "int",
            "char": "char", "long": "long", "short": "short"}


def _c_type(t: ast.TypeRef) -> str:
    base = _TYPEMAP.get(t.name, t.name.lstrip("_"))
    return base + "*" * t.pointers


@dataclass
class CompiledC:
    code: str
    n_gates: int
    n_events: int
    mem_size: int
    n_tracks: int
    event_ids: dict[str, int]

    def rom_bytes(self) -> int:
        """Code-size proxy used by the footprint model."""
        return len(self.code.encode())


class CEmitter:
    def __init__(self, bound: BoundProgram, abi: TargetABI = HOST,
                 with_main: bool = True, name: str = "ceu",
                 bounds=None):
        self.bound = bound
        self.abi = abi
        self.with_main = with_main
        self.name = name
        #: optional analysis.bounds.ResourceBounds — embedded as capacity
        #: constants + _Static_asserts when provided
        self.bounds = bounds
        self._node_of = {n.nid: n for n in bound.program.walk()}
        if bound.async_blocks:
            raise UnsupportedForC(
                "`async` blocks are not lowered to C by this backend",
                bound.async_blocks[0].span)
        self.layout: MemLayout = build_layout(bound, abi)
        self.gates: GateTable = build_gates(bound)
        self.body: list[str] = []      # lines inside the switch
        self._label = 1                # 1 = boot
        self._max_depth = self._measure_depth(bound.program.body, 0)
        self._scratch: list[str] = []  # extra C globals (counters, values)
        self._cont_label: dict[int, int] = {}   # boundary nid → label
        self._loop_exit: dict[int, int] = {}    # loop nid → label
        self._loop_head: dict[int, int] = {}
        self.event_ids: dict[str, int] = {
            sym.name: i for i, sym in enumerate(bound.events.values())}

    # ------------------------------------------------------------- helpers
    def _measure_depth(self, node: ast.Node, d: int) -> int:
        best = d
        nested = d + 1 if isinstance(node, (ast.ParStmt, ast.Loop)) else d
        for child in node.children():
            best = max(best, self._measure_depth(child, nested))
        return best

    def _depth_of(self, node: ast.Node) -> int:
        depth = 0
        cur = self.bound.parent.get(node.nid)
        while cur is not None:
            if isinstance(cur, (ast.ParStmt, ast.Loop)):
                depth += 1
            cur = self.bound.parent.get(cur.nid)
        return depth

    def _join_prio(self, node: ast.Node) -> int:
        # queue pops the smallest; normal tracks are 0; inner joins first
        return 1 + (self._max_depth - self._depth_of(node))

    def new_label(self) -> int:
        self._label += 1
        return self._label

    def out(self, line: str) -> None:
        self.body.append("        " + line)

    def case(self, label: int, note: str = "") -> None:
        comment = f"  /* {note} */" if note else ""
        self.body.append(f"      case {label}:{comment}")

    # --------------------------------------------------------- expressions
    def exp(self, e: ast.Exp) -> str:
        if isinstance(e, ast.Num):
            return str(e.value)
        if isinstance(e, ast.Str):
            esc = (e.value.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t"))
            return f'"{esc}"'
        if isinstance(e, ast.Null):
            return "0"
        if isinstance(e, ast.NameInt):
            sym = self.bound.var_of[e.nid]
            return f"V{sym.uid}_{sym.name}"
        if isinstance(e, ast.NameC):
            return e.c_name
        if isinstance(e, ast.Unop):
            return f"({e.op}{self.exp(e.operand)})"
        if isinstance(e, ast.Binop):
            return f"({self.exp(e.left)} {e.op} {self.exp(e.right)})"
        if isinstance(e, ast.Index):
            return f"{self.exp(e.base)}[{self.exp(e.index)}]"
        if isinstance(e, ast.CallExp):
            args = ", ".join(self.exp(a) for a in e.args)
            return f"{self.exp(e.func)}({args})"
        if isinstance(e, ast.FieldAccess):
            return f"{self.exp(e.base)}{e.op}{e.name}"
        if isinstance(e, ast.Cast):
            return f"(({_c_type(e.type)}){self.exp(e.operand)})"
        if isinstance(e, ast.SizeOf):
            return f"sizeof({_c_type(e.type)})"
        raise UnsupportedForC(f"expression {type(e).__name__}", e.span)

    # ----------------------------------------------------------- statements
    def block(self, block: ast.Block) -> bool:
        """Compile a block; returns False when control cannot fall out."""
        for stmt in block.stmts:
            if not self.stmt(stmt):
                return False
        return True

    def stmt(self, s: ast.Stmt) -> bool:
        if isinstance(s, (ast.Nothing, ast.DeclEvent, ast.PureDecl,
                          ast.DeterministicDecl, ast.CBlockStmt)):
            return True
        if isinstance(s, ast.DeclVar):
            for d in s.decls:
                sym = self.bound.sym_of_decl[d.nid]
                if d.init is None:
                    continue
                if isinstance(d.init, ast.Exp):
                    self.out(f"V{sym.uid}_{sym.name} = {self.exp(d.init)};")
                else:
                    if not self.setexp(d.init,
                                       f"V{sym.uid}_{sym.name}"):
                        return False
            return True
        if isinstance(s, (ast.AwaitExt, ast.AwaitInt, ast.AwaitTime,
                          ast.AwaitExp, ast.AwaitForever)):
            self.compile_await(s, None)
            return not isinstance(s, ast.AwaitForever)
        if isinstance(s, ast.EmitInt):
            sym = self.bound.event_of[s.nid]
            eid = self.event_ids[sym.name]
            if s.value is not None:
                self.out(f"EVT_VAL[{eid}] = (intptr_t)({self.exp(s.value)});")
            self.out(f"ceu_bcast({eid});")
            return True
        if isinstance(s, ast.EmitExt):
            sym = self.bound.event_of[s.nid]
            eid = self.event_ids[sym.name]
            value = "0" if s.value is None else self.exp(s.value)
            self.out(f"ceu_output({eid}, (intptr_t)({value}));")
            return True
        if isinstance(s, ast.If):
            self.out(f"if ({self.exp(s.cond)}) {{")
            then_falls = self.block(s.then)
            if s.orelse is not None:
                self.out("} else {")
                else_falls = self.block(s.orelse)
            else:
                else_falls = True
            self.out("}")
            return then_falls or else_falls
        if isinstance(s, ast.Loop):
            head = self.new_label()
            exit_label = self.new_label()
            self._loop_head[s.nid] = head
            self._loop_exit[s.nid] = exit_label
            self.out(f"track = {head}; goto _SWITCH;")
            self.case(head, "loop")
            if self.block(s.body):
                self.out(f"track = {head}; goto _SWITCH;  /* iterate */")
            self.case(exit_label, "loop exit")
            return True
        if isinstance(s, ast.Break):
            return self.compile_escape(s, self.bound.break_target[s.nid],
                                       None)
        if isinstance(s, ast.Return):
            boundary = self.bound.ret_boundary.get(s.nid)
            value = "0" if s.value is None else self.exp(s.value)
            if boundary is None:
                self.out(f"CEU_RET = (intptr_t)({value}); CEU_DONE = 1; "
                         f"break;")
                return False
            return self.compile_escape(s, boundary, value)
        if isinstance(s, ast.ParStmt):
            return self.compile_par(s, None)
        if isinstance(s, ast.CCallStmt):
            self.out(f"{self.exp(s.call)};")
            return True
        if isinstance(s, ast.CallStmt):
            self.out(f"{self.exp(s.exp)};")
            return True
        if isinstance(s, ast.Assign):
            target = self.lvalue(s.target)
            if isinstance(s.value, ast.Exp):
                self.out(f"{target} = {self.exp(s.value)};")
                return True
            return self.setexp(s.value, target)
        if isinstance(s, ast.DoBlock):
            falls = self.block(s.body)
            if s.nid in self._cont_label:
                self.case(self._cont_label[s.nid], "do-end")
                return True
            return falls
        raise UnsupportedForC(f"statement {type(s).__name__}", s.span)

    def lvalue(self, e: ast.Exp) -> str:
        return self.exp(e)

    def setexp(self, value: ast.Node, target: str) -> bool:
        """Compile a statement-valued right-hand side into ``target``."""
        if isinstance(value, (ast.AwaitExt, ast.AwaitInt, ast.AwaitTime,
                              ast.AwaitExp)):
            self.compile_await(value, target)
            return True
        if isinstance(value, ast.ParStmt):
            return self.compile_par(value, target)
        if isinstance(value, ast.DoBlock):
            slot = self._value_slot(value.nid)
            cont = self.new_label()
            self._cont_label[value.nid] = cont
            self.out(f"{slot} = 0;")
            falls = self.block(value.body)
            if falls:
                self.out(f"track = {cont}; goto _SWITCH;")
            self.case(cont, "do-value end")
            self.out(f"{target} = {slot};")
            return True
        raise UnsupportedForC("unsupported right-hand side", value.span)

    # --------------------------------------------------------------- await
    def compile_await(self, s: ast.Stmt, target: str | None) -> None:
        gate = self.gates.by_await[s.nid]
        resume = self.new_label()
        if isinstance(s, ast.AwaitForever):
            self.out(f"GATES[{gate.id}] = {resume};  /* await forever */")
            self.out("break;")
            self.case(resume, "unreachable")
            self.out("break;")
            return
        if isinstance(s, (ast.AwaitExt, ast.AwaitInt)):
            sym = self.bound.event_of[s.nid]
            self.out(f"GATES[{gate.id}] = {resume};  "
                     f"/* await {sym.name} */")
            self.out("break;")
            self.case(resume, f"after {sym.name}")
            self.out(f"GATES[{gate.id}] = 0;")
            if target is not None:
                eid = self.event_ids[sym.name]
                self.out(f"{target} = EVT_VAL[{eid}];")
            return
        if isinstance(s, ast.AwaitTime):
            us = str(s.time.us)
        else:
            us = self.exp(s.exp)  # type: ignore[attr-defined]
        self.out(f"GATES[{gate.id}] = {resume}; "
                 f"TIMERS[{gate.id}] = CEU_BASE + ({us}); "
                 f"TBASES[{gate.id}] = CEU_BASE;")
        self.out("break;")
        self.case(resume, "timer expired")
        self.out(f"GATES[{gate.id}] = 0;")
        if target is not None:
            self.out(f"{target} = (intptr_t)(CEU_CLOCK - CEU_BASE);")

    # ----------------------------------------------------------------- par
    def _value_slot(self, nid: int) -> str:
        name = f"PARVAL_{nid}"
        decl = f"static intptr_t {name};"
        if decl not in self._scratch:
            self._scratch.append(decl)
        return name

    def _counter_slot(self, nid: int) -> str:
        name = f"CNT_{nid}"
        decl = f"static int {name};"
        if decl not in self._scratch:
            self._scratch.append(decl)
        return name

    def _emit_kill(self, par: ast.ParStmt, note: str) -> None:
        lo, hi = self.gates.kill_range(par.nid)
        if lo <= hi:
            self.out(f"memset(&GATES[{lo}], 0, {hi - lo + 1} * "
                     f"sizeof(GATES[0]));  /* kill {note} */")

    def compile_par(self, s: ast.ParStmt, target: str | None) -> bool:
        # `par/or` and `par/and` rejoin on their own; a plain `par` used as
        # a value completes only through `return` (escape gates), §2.1
        rejoins = s.mode in ("or", "and")
        has_cont = rejoins or s.nid in self.bound.value_boundaries
        join_gate = self.gates.join_gate.get(s.nid)
        join_label = self.new_label() if rejoins else None
        cont_label = None
        if has_cont:
            cont_label = self._cont_label.get(s.nid)
            if cont_label is None:
                cont_label = self.new_label()
            self._cont_label[s.nid] = cont_label
        prio = self._join_prio(s)
        branch_labels = [self.new_label() for _ in s.blocks]
        if s.nid in self.bound.value_boundaries:
            self.out(f"{self._value_slot(s.nid)} = 0;")
        if s.mode == "and":
            self.out(f"{self._counter_slot(s.nid)} = 0;")
        for lbl in branch_labels:
            self.out(f"ceu_spawn(0, {lbl});")
        self.out("break;")
        for i, (block, lbl) in enumerate(zip(s.blocks, branch_labels)):
            self.case(lbl, f"{s.keyword} branch {i + 1}")
            falls = self.block(block)
            if falls:
                self._emit_branch_end(s, join_gate, join_label, prio)
        if rejoins:
            assert join_label is not None and join_gate is not None
            self.case(join_label, f"{s.keyword} join")
            self.out(f"if (!GATES[{join_gate.id}]) break;  "
                     f"/* cancelled by an outer kill */")
            self.out(f"GATES[{join_gate.id}] = 0;")
            if s.mode != "and":
                self._emit_kill(s, f"{s.keyword} siblings")
            self.out(f"track = {cont_label}; goto _SWITCH;")
        if has_cont:
            self.case(cont_label, f"after {s.keyword}")
            if target is not None:
                self.out(f"{target} = {self._value_slot(s.nid)};")
        return has_cont

    def _emit_branch_end(self, s: ast.ParStmt, join_gate, join_label,
                         prio: int) -> None:
        if s.mode == "or":
            self.out(f"if (!GATES[{join_gate.id}]) {{ "
                     f"GATES[{join_gate.id}] = 1; "
                     f"ceu_spawn({prio}, {join_label}); }}")
            self.out("break;")
        elif s.mode == "and":
            cnt = self._counter_slot(s.nid)
            self.out(f"{cnt}++;")
            self.out(f"if ({cnt} == {len(s.blocks)}) {{ "
                     f"GATES[{join_gate.id}] = 1; "
                     f"ceu_spawn({prio}, {join_label}); }}")
            self.out("break;")
        else:  # plain par: the trail halts forever
            self.out("break;  /* trail terminates */")

    # -------------------------------------------------------------- escape
    def compile_escape(self, s: ast.Stmt, target: ast.Node,
                       value: str | None) -> bool:
        """break / return crossing 0+ parallel compositions."""
        crossed: list[ast.ParStmt] = []
        cur = self.bound.parent.get(s.nid)
        while cur is not None and cur is not target:
            if isinstance(cur, ast.ParStmt):
                crossed.append(cur)
            cur = self.bound.parent.get(cur.nid)
        if isinstance(target, ast.ParStmt):
            crossed.append(target)
        if value is not None:
            self.out(f"{self._value_slot(target.nid)} = "
                     f"(intptr_t)({value});")
        dest = self._escape_destination(target)
        if not crossed:
            self.out(f"track = {dest}; goto _SWITCH;")
            return False
        gate = self.gates.escape_gate[s.nid]
        esc = self.new_label()
        prio = self._join_prio(target)
        self.out(f"GATES[{gate.id}] = 1; ceu_spawn({prio}, {esc});")
        self.out("break;")
        self.case(esc, "escape")
        self.out(f"if (!GATES[{gate.id}]) break;  /* escape cancelled */")
        self.out(f"GATES[{gate.id}] = 0;")
        outer = crossed[-1]
        self._emit_kill(outer, "escaped compositions")
        self.out(f"track = {dest}; goto _SWITCH;")
        return False

    def _escape_destination(self, target: ast.Node) -> int:
        if isinstance(target, ast.Loop):
            return self._loop_exit[target.nid]
        # value boundary (par or do): continuation label exists by the
        # time the escape fires; allocate it now if the boundary is still
        # being compiled
        if target.nid not in self._cont_label:
            self._cont_label[target.nid] = self.new_label()
        return self._cont_label[target.nid]

    # ------------------------------------------------------------ assembly
    def emit(self) -> CompiledC:
        # compile program body as the boot track
        self.case(1, "boot")
        falls = self.block(self.bound.program.body)
        if falls:
            self.out("break;  /* boot trail ends */")
        n_tracks = self._label
        code = self._assemble(n_tracks)
        return CompiledC(code=code, n_gates=self.gates.count,
                         n_events=len(self.event_ids),
                         mem_size=self.layout.total, n_tracks=n_tracks,
                         event_ids=dict(self.event_ids))

    def _bounds_block(self) -> str:
        """Static resource bounds (docs/ANALYSIS.md) as capacity constants
        checked against the generated tables at compile time."""
        b = self.bounds
        if b is None:
            return ""
        lines = [
            "",
            "/* ---- static resource bounds (repro lint, I501) ---- */",
            f"#define CEU_MAX_TRAILS {b.max_trails}",
            f"#define CEU_MAX_ARMED_TIMERS {b.max_armed_timers}",
            f"#define CEU_MAX_EMIT_DEPTH {b.max_internal_emits}",
            f"#define CEU_STATIC_MEM_BYTES {b.mem_bytes(self.abi)}",
            "#if __STDC_VERSION__ >= 201112L",
            '_Static_assert(QMAX >= CEU_MAX_TRAILS, '
            '"track queue below trail bound");',
            '_Static_assert(N_GATES >= CEU_MAX_ARMED_TIMERS, '
            '"gate vector below timer bound");',
            '_Static_assert(MEM_SIZE >= CEU_STATIC_MEM_BYTES, '
            '"memory vector below static bound");',
            "#endif",
        ]
        return "\n".join(lines)

    def _assemble(self, n_tracks: int) -> str:
        bound = self.bound
        gates = self.gates
        n_gates = max(gates.count, 1)
        n_events = max(len(self.event_ids), 1)
        mem = max(self.layout.total, 1)
        gate_evt = []
        for g in gates.gates:
            if g.kind in ("ext", "intl"):
                gate_evt.append(str(self.event_ids[g.event]))
            elif g.kind == "time":
                # computed timeouts (`await (exp)`) get their own gate
                # kind: ceu_go_time fires them alone, one reaction each
                node = self._node_of.get(g.node_nid)
                gate_evt.append("CEU_GK_TEXP"
                                if isinstance(node, ast.AwaitExp)
                                else "CEU_GK_TIME")
            else:
                gate_evt.append("CEU_GK_NONE")
        var_defs = []
        for sym, off in self.layout.offsets.items():
            ctype = _c_type(sym.type)
            if sym.is_array:
                var_defs.append(f"#define V{sym.uid}_{sym.name} "
                                f"(({ctype}*)(MEM+{off}))")
            else:
                var_defs.append(f"#define V{sym.uid}_{sym.name} "
                                f"(*({ctype}*)(MEM+{off}))")
        evt_enum = [f"#define EVT_{name} {eid}"
                    for name, eid in self.event_ids.items()]
        c_blocks = [s.code for s in bound.program.walk()
                    if isinstance(s, ast.CBlockStmt)]
        name_table = ",\n  ".join(
            f'{{"{name}", {eid}}}' for name, eid in self.event_ids.items())
        evt_names = ", ".join(f'"{name}"' for name in self.event_ids)

        parts = [f"""\
/* Generated by repro — Céu to C ({self.name}).
 * Scheme of §4.4: tracks as switch cases, gates, flat memory vector. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <stdint.h>

/* ---- program C blocks (passed through verbatim, §2.4) ---- */
{''.join(c_blocks)}

typedef long long ceu_time_t;
#define N_GATES {n_gates}
#define N_EVTS {n_events}
#define MEM_SIZE {mem}
#define QMAX {n_gates * 2 + 16}
#define CEU_GK_TIME (-1)
#define CEU_GK_NONE (-2)
#define CEU_GK_TEXP (-3)
{self._bounds_block()}
{chr(10).join(evt_enum)}

static int GATES[N_GATES];
static ceu_time_t TIMERS[N_GATES];
static ceu_time_t TBASES[N_GATES];
static const int GATE_EVT[N_GATES] = {{ {', '.join(gate_evt) or '0'} }};
static unsigned char MEM[MEM_SIZE];
static intptr_t EVT_VAL[N_EVTS];
static ceu_time_t CEU_CLOCK = 0, CEU_BASE = 0;
static int CEU_DONE = 0;
static intptr_t CEU_RET = 0;

{chr(10).join(var_defs)}
{chr(10).join(self._scratch)}

/* ---- conformance hooks (-DCEU_HOOKS) ----
 * One stderr line per reaction / internal emit, mirroring the VM's
 * Trace.portable_signature() so traces can be diffed across backends
 * (docs/FUZZING.md). */
#ifdef CEU_HOOKS
static const char *EVT_NAME[N_EVTS] = {{ {evt_names or '0'} }};
#define CEU_SIG(s)       fprintf(stderr, "==SIG %s\\n", (s))
#define CEU_SIG_EVT(e)   fprintf(stderr, "==SIG event:%s\\n", EVT_NAME[e])
#define CEU_SIG_EMIT(e)  fprintf(stderr, "==EMIT %s\\n", EVT_NAME[e])
#else
#define CEU_SIG(s)
#define CEU_SIG_EVT(e)
#define CEU_SIG_EMIT(e)
#endif

/* output events: platforms override this hook */
void ceu_output(int evt, intptr_t val)
    __attribute__((weak));
void ceu_output(int evt, intptr_t val) {{ (void)evt; (void)val; }}

static struct {{ int prio, seq, track; }} Q[QMAX];
static int qn = 0, qseq = 0;

static void ceu_spawn(int prio, int track) {{
    if (qn >= QMAX) {{ fprintf(stderr, "queue overflow\\n"); abort(); }}
    Q[qn].prio = prio; Q[qn].seq = qseq++; Q[qn].track = track; qn++;
}}

static int ceu_pop(void) {{
    int best = -1, i, t;
    for (i = 0; i < qn; i++)
        if (best < 0 || Q[i].prio < Q[best].prio
            || (Q[i].prio == Q[best].prio && Q[i].seq < Q[best].seq))
            best = i;
    if (best < 0) return 0;
    t = Q[best].track;
    Q[best] = Q[--qn];
    return t;
}}

static void ceu_track(int track);

/* internal events: the C stack realises the §2.2 stack policy */
static void ceu_bcast(int evt) {{
    int lbls[N_GATES]; int n = 0, g;
    CEU_SIG_EMIT(evt);
    for (g = 0; g < N_GATES; g++)
        if (GATE_EVT[g] == evt && GATES[g]) {{
            lbls[n++] = GATES[g]; GATES[g] = 0;
        }}
    for (g = 0; g < n; g++) ceu_track(lbls[g]);
}}

static void ceu_flush(void) {{
    int t;
    while (!CEU_DONE && (t = ceu_pop()) != 0) ceu_track(t);
    qn = 0;
}}

static int ceu_alive(void) {{
    int g;
    for (g = 0; g < N_GATES; g++) if (GATES[g]) return 1;
    return 0;
}}

static void ceu_track(int track) {{
  _SWITCH:
    if (CEU_DONE) return;
    switch (track) {{
{chr(10).join(self.body)}
        break;
      default:
        break;
    }}
}}

int ceu_go_init(void) {{
    CEU_SIG("boot");
    memset(GATES, 0, sizeof(GATES));
    ceu_spawn(0, 1);
    ceu_flush();
    if (!ceu_alive()) CEU_DONE = 1;
    return CEU_DONE;
}}

int ceu_go_event(int evt, intptr_t val) {{
    int g;
    if (CEU_DONE) return 1;
    CEU_SIG_EVT(evt);
    EVT_VAL[evt] = val;
    CEU_BASE = CEU_CLOCK;
    for (g = 0; g < N_GATES; g++)
        if (GATE_EVT[g] == evt && GATES[g]) {{
            int lbl = GATES[g]; GATES[g] = 0; ceu_spawn(0, lbl);
        }}
    ceu_flush();
    if (!ceu_alive()) CEU_DONE = 1;
    return CEU_DONE;
}}

/* One reaction per expiring partition: timers armed in the same reaction
 * (same TBASES) fire together, cross-epoch coincidences fire separately
 * (most recently armed epoch first), and computed timeouts (CEU_GK_TEXP)
 * fire alone — mirroring the temporal analysis' per-epoch exploration. */
int ceu_go_time(ceu_time_t now) {{
    int g;
    if (CEU_DONE) return 1;
    CEU_CLOCK = now;
    for (;;) {{
        ceu_time_t best = -1, base = -1;
        int texp_gate = -1;
        for (g = 0; g < N_GATES; g++)
            if ((GATE_EVT[g] == CEU_GK_TIME || GATE_EVT[g] == CEU_GK_TEXP)
                && GATES[g] && (best < 0 || TIMERS[g] < best))
                best = TIMERS[g];
        if (best < 0 || best > now) break;
        for (g = 0; g < N_GATES; g++)
            if (GATE_EVT[g] == CEU_GK_TIME && GATES[g]
                && TIMERS[g] == best && TBASES[g] > base)
                base = TBASES[g];
        CEU_SIG("time");
        CEU_BASE = best;
        if (base >= 0) {{
            for (g = 0; g < N_GATES; g++)
                if (GATE_EVT[g] == CEU_GK_TIME && GATES[g]
                    && TIMERS[g] == best && TBASES[g] == base) {{
                    int lbl = GATES[g]; GATES[g] = 0; ceu_spawn(0, lbl);
                }}
        }} else {{
            for (g = 0; g < N_GATES; g++)
                if (GATE_EVT[g] == CEU_GK_TEXP && GATES[g]
                    && TIMERS[g] == best) {{ texp_gate = g; break; }}
            if (texp_gate >= 0) {{
                int lbl = GATES[texp_gate]; GATES[texp_gate] = 0;
                ceu_spawn(0, lbl);
            }}
        }}
        ceu_flush();
        if (CEU_DONE) break;
    }}
    if (!CEU_DONE && !ceu_alive()) CEU_DONE = 1;
    return CEU_DONE;
}}

int ceu_done(void) {{ return CEU_DONE; }}
long ceu_ret(void) {{ return (long)CEU_RET; }}
"""]
        if self.with_main:
            parts.append(f"""
static const struct {{ const char *name; int id; }} EVT_TABLE[] = {{
  {name_table or '{"", -1}'}
}};

static int evt_by_name(const char *name) {{
    unsigned i;
    for (i = 0; i < sizeof(EVT_TABLE) / sizeof(EVT_TABLE[0]); i++)
        if (!strcmp(EVT_TABLE[i].name, name)) return EVT_TABLE[i].id;
    fprintf(stderr, "unknown event %s\\n", name);
    exit(2);
}}

/* driver: reads "E <event> <value>" / "T <abs_us>" commands */
int main(void) {{
    char cmd[64];
    ceu_go_init();
    while (!CEU_DONE && scanf("%63s", cmd) == 1) {{
        if (!strcmp(cmd, "E")) {{
            char name[64]; long v;
            if (scanf("%63s %ld", name, &v) != 2) break;
            ceu_go_event(evt_by_name(name), (intptr_t)v);
        }} else if (!strcmp(cmd, "T")) {{
            long v;
            if (scanf("%ld", &v) != 1) break;
            ceu_go_time((ceu_time_t)v);
        }} else {{
            fprintf(stderr, "bad command %s\\n", cmd);
            exit(2);
        }}
    }}
    printf("==DONE=%d RET=%ld==\\n", CEU_DONE, (long)CEU_RET);
    return 0;
}}
""")
        return "".join(parts)


def compile_to_c(bound: BoundProgram, abi: TargetABI = HOST,
                 with_main: bool = True, name: str = "ceu",
                 bounds=None) -> CompiledC:
    """Lower a bound program to a self-contained C99 translation unit.

    ``bounds`` (an :class:`repro.analysis.bounds.ResourceBounds`) embeds
    the statically derived resource maxima as checked capacity constants.
    """
    return CEmitter(bound, abi=abi, with_main=with_main, name=name,
                    bounds=bounds).emit()
