"""Mario environments (§3.3): the game core embedded *unmodified* in three
enclosing environments, exactly the paper's workflow.

1. :func:`environment_plain`    — live play: scripted keys, bounded steps;
2. :func:`environment_replay`   — record 1000 steps, then replay the same
   input sequence (faster), ``replays`` times;
3. :func:`environment_backwards`— replay *backwards*: for each
   ``step_ref`` from 1000 down to 1, fast-forward silently and present
   only the scene at ``step_ref``.
"""

from __future__ import annotations

from textwrap import indent

from . import load

_HEADER = """\
input int  Seed;
input void Key;
input void Step;
input void Restart;
internal void collision;
pure _rand;
pure _srand;
pure _redraw;
"""


def _game(body_indent: str = "      ") -> str:
    return indent(load("mario_game"), body_indent)


def environment_plain(steps: int = 1000, key_steps: tuple = ()) -> str:
    """Live environment: emits Seed, then `steps` Step events at 10 ms,
    pressing Key at the scripted step numbers."""
    keys = ", ".join(str(k) for k in key_steps) or "-1"
    return f"""{_HEADER}
par/or do
   // CODE FOR THE GAME
   do
{_game()}
   end
with
   // CODE FOR THE EVENT GENERATOR
   async do
      emit Seed = _time(0);
      int step = 0;
      int idx = 0;
      loop do
         if idx < {len(key_steps)} && step == _KEYS[idx] then
            emit Key;
            idx = idx + 1;
         end
         emit 10ms;
         emit Step;
         step = step + 1;
         if step == {steps} then
            break;
         end
      end
   end
end
C do
static const int KEYS[] = {{ {keys} }};
end
"""


def environment_replay(steps: int = 1000, key_steps: tuple = (),
                       replays: int = 1) -> str:
    """Record/replay environment: play `steps` steps with scripted keys,
    recording them, then re-execute the gameplay `replays` times from the
    recorded vector (each replay restarts the game, §3.3)."""
    keys = ", ".join(str(k) for k in key_steps) or "-1"
    return f"""{_HEADER}
par/or do
   loop do
      par/or do
         // CODE FOR THE GAME
         do
{indent(load('mario_game'), '         ')}
         end
      with
         await Restart;
      end
   end
with
   async do
      // CODE FOR THE (MODIFIED) EVENT GENERATOR
      int step = 0;
      int seed = _time(0);
      emit Seed = seed;

      int[{max(steps, 1)}] keys;
      keys[0] = -1;
      int idx = 0;

      loop do
         if idx < {len(key_steps)} && step == _KEYS[idx] then
            keys[idx] = step;
            idx = idx + 1;
            if idx < {max(steps, 1)} then
               keys[idx] = -1;
            end
            emit Key;
         end
         emit 10ms;
         emit Step;
         step = step + 1;
         if step == {steps} then
            break;
         end
      end

      // CODE FOR THE REPLAY
      int replay = 0;
      loop do
         emit Restart;
         emit Seed = seed;
         step = 0;
         idx = 0;
         loop do
            if step == keys[idx] then
               emit Key;
               idx = idx + 1;
            else
               emit 10ms;
               emit Step;
               step = step + 1;
               if step == {steps} then
                  break;
               end
            end
         end
         replay = replay + 1;
         if replay == {replays} then
            break;
         end
      end
   end
end
C do
static const int KEYS[] = {{ {keys} }};
end
"""


def environment_backwards(steps: int = 100, key_steps: tuple = ()) -> str:
    """Backwards replay (§3.3): record, then for each step_ref from
    `steps` down to 1, silently fast-forward and present one scene."""
    keys = ", ".join(str(k) for k in key_steps) or "-1"
    return f"""{_HEADER}
par/or do
   loop do
      par/or do
         // CODE FOR THE GAME
         do
{indent(load('mario_game'), '         ')}
         end
      with
         await Restart;
      end
   end
with
   async do
      // CODE FOR THE (MODIFIED) EVENT GENERATOR
      int step = 0;
      int seed = _time(0);
      emit Seed = seed;

      int[{max(steps, 1)}] keys;
      keys[0] = -1;
      int idx = 0;

      loop do
         if idx < {len(key_steps)} && step == _KEYS[idx] then
            keys[idx] = step;
            idx = idx + 1;
            if idx < {max(steps, 1)} then
               keys[idx] = -1;
            end
            emit Key;
         end
         emit 10ms;
         emit Step;
         step = step + 1;
         if step == {steps} then
            break;
         end
      end

      // CODE FOR THE (MODIFIED) REPLAY
      int step_ref = {steps};
      loop do
         _redraw_on(0);
         emit Restart;
         emit Seed = seed;
         step = 0;
         idx = 0;
         loop do
            if step == keys[idx] then
               emit Key;
               idx = idx + 1;
            else
               emit 10ms;
               emit Step;
               step = step + 1;
               if step == step_ref then
                  break;
               end
            end
         end
         _redraw_on(1);
         _redraw(0, 0, 0, 0);
         step_ref = step_ref - 1;
         if step_ref == 0 then
            break;
         end
      end
   end
end
C do
static const int KEYS[] = {{ {keys} }};
end
"""


def environment_sdl_poll(steps: int = 1000) -> str:
    """The paper's first environment verbatim: poll SDL for key events,
    emit time and Step every 10 ms (bounded at `steps` for testing)."""
    return f"""{_HEADER}
par/or do
   // CODE FOR THE GAME
   do
{_game()}
   end
with
   // CODE FOR THE EVENT GENERATOR
   async do
      emit Seed = _time(0);
      int step = 0;
      loop do
         _SDL_Event event;
         if _SDL_PollEvent(&event) then
            if event.type == _SDL_KEYDOWN then
               emit Key;
            end
         else
            _SDL_Delay(10);
            emit 10ms;
            emit Step;
            step = step + 1;
            if step == {steps} then
               break;
            end
         end
      end
   end
end
"""
