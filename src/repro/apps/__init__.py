"""The paper's applications, as Céu sources shipped with the package.

========== =====================================================
``blink``   Table 1 row 1 — three-led blinker
``sense``   Table 1 row 2 — periodic sensor sampling
``client``  Table 1 row 3 — send + ack + retry
``server``  Table 1 row 4 — receive + display + ack
``ring``    §3.1 — three-mote ring with failure handling
``ship``    §3.2 — Arduino LCD game
``mario_game`` §3.3 — game core (spliced into environments)
``blink2``  §5.2 — the 400/1000 ms synchronization experiment
========== =====================================================
"""

from importlib import resources


def load(name: str) -> str:
    """Return the Céu source of a bundled application."""
    return (resources.files(__package__) / "ceu" / f"{name}.ceu").read_text()


def names() -> list[str]:
    base = resources.files(__package__) / "ceu"
    return sorted(p.name[:-4] for p in base.iterdir()
                  if p.name.endswith(".ceu"))
