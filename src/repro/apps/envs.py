"""C-side environments for the demo applications (§3.2, §3.3).

The paper's demos mix Céu code with application-specific C definitions
(map generation, screen redraw, key decoding).  Here those C functions are
Python callables installed into the program's :class:`~repro.runtime.CEnv`
— shared by the examples, the tests and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.des import Rng

# ---------------------------------------------------------------------------
# ship (§3.2)
# ---------------------------------------------------------------------------

KEY_NONE = 0
KEY_UP = 1
KEY_DOWN = 2

MAP_LEN = 40
FINISH = MAP_LEN - 2


@dataclass
class ShipWorld:
    """The ship demo's C side: map, redraw, key decoding."""

    lcd: object = None
    seed: int = 3
    map_rows: list[str] = field(default_factory=list)
    redraws: list[tuple[int, int, int]] = field(default_factory=list)
    rng: Rng = field(default_factory=lambda: Rng(3))

    def map_generate(self) -> int:
        self.rng = Rng(self.seed)
        rows = [[" "] * MAP_LEN, [" "] * MAP_LEN]
        for col in range(4, FINISH, 2):
            # at most one meteor per column pair, never blocking both rows
            row = self.rng.uniform(0, 2)
            if row < 2:
                rows[row][col] = "#"
        self.map_rows = ["".join(r) for r in rows]
        return 0

    def redraw(self, step: int, ship: int, points: int) -> int:
        self.redraws.append((step, ship, points))
        if self.lcd is not None:
            self.lcd.clear()
            window = 16
            for row in range(2):
                self.lcd.setCursor(0, row)
                segment = self.map_rows[row][step:step + window] \
                    if self.map_rows else " " * window
                self.lcd.print(segment.ljust(window))
            self.lcd.setCursor(0, ship)
            self.lcd.write(">")
        return 0

    def analog2key(self, level: int) -> int:
        if level < 200:
            return KEY_UP
        if level < 500:
            return KEY_DOWN
        return KEY_NONE

    def env(self) -> dict:
        return {
            "map_generate": self.map_generate,
            "redraw": self.redraw,
            "analog2key": self.analog2key,
            "MAP": _MapView(self),
            "FINISH": FINISH,
            "KEY_NONE": KEY_NONE,
            "KEY_UP": KEY_UP,
            "KEY_DOWN": KEY_DOWN,
        }


class _MapView:
    """`_MAP[row][col]` — live view over the generated map."""

    def __init__(self, world: ShipWorld):
        self.world = world

    def __getitem__(self, row: int) -> str:
        if not self.world.map_rows:
            return " " * MAP_LEN
        return self.world.map_rows[row]


# ---------------------------------------------------------------------------
# mario (§3.3)
# ---------------------------------------------------------------------------


@dataclass
class MarioScreen:
    """The mario demo's single side effect, with the §3.3 tweaks: an
    on/off toggle and a "present" sentinel (`_redraw(0,0,0,0)`) used by
    the backwards replay to re-emit the last computed scene."""

    enabled: bool = True
    frames: list[tuple[int, int, int, int]] = field(default_factory=list)
    last: Optional[tuple[int, int, int, int]] = None

    def redraw(self, mx: int, my: int, tx: int, ty: int) -> int:
        scene = (mx, my, tx, ty)
        if scene == (0, 0, 0, 0) and self.last is not None:
            scene = self.last   # present the last computed scene
        else:
            self.last = scene
        if self.enabled:
            self.frames.append(scene)
        return 0

    def redraw_on(self, flag: int) -> int:
        self.enabled = bool(flag)
        return 0

    def env(self) -> dict:
        return {"redraw": self.redraw, "redraw_on": self.redraw_on}
