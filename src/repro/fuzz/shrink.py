"""Delta-debugging minimiser for fuzz failures.

Given a failing (program, event script) pair and a predicate "does it
still fail?", the shrinker greedily removes script items and program
lines until a local minimum: the classic ddmin chunk sweep for the
script, plus *structure-aware* passes for the program that use the
parser's own spans — delete whole statements, lift a ``par`` branch /
``if`` arm / ``loop`` body in place of its parent — so block keywords
never end up orphaned.  Candidates that fail to parse/bind/§2.5 simply
count as "does not fail" and are skipped, which is what makes naive
line removal safe.

Every fuzz failure should land as a reproducer small enough to read —
the acceptance bar is ≤ 15 lines for an injected codegen fault.

Before any ddmin round the shrinker tries a **causal slice** pass
(:func:`causal_cone_script`): replay the failing script once with a
:class:`~repro.obs.causal.CausalGraph` attached, take the causal cone of
the final reaction — the reactions whose occurrences are ancestors of
anything in it — and drop every stimulus item whose reactions fall
outside the cone.  One instrumented replay plus one verifying predicate
call can discard most of a long stimulus before the O(n·log n) ddmin
sweep starts; if the sliced script does not still fail (the failure was
not causally confined) the pass is simply skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..lang import ast, parse
from ..lang.errors import CeuError
from ..sema import bind, check_bounded

Predicate = Callable[[str, list], bool]


@dataclass
class ShrinkResult:
    src: str
    script: list
    rounds: int
    tests: int            # predicate evaluations spent
    sliced: bool = False  # the causal-cone pass dropped stimulus items

    def src_lines(self) -> int:
        return len(self.src.splitlines())


def causal_cone_script(src: str, script: list) -> Optional[list]:
    """Project ``script`` onto the causal cone of its final reaction.

    Replays the script once on an instrumented VM, maps every stimulus
    item to the reaction indices it produced, and keeps only the items
    whose reactions appear in the causal cone (ancestor closure) of the
    last reaction that ran.  A crash mid-replay is fine — the cone of
    whatever reaction ran last is exactly what we want for a VM-fault
    failure.  Returns ``None`` when the projection cannot help (replay
    unavailable, fewer than two items, or nothing droppable).
    """
    # local imports: fuzz must stay importable without the runtime loaded
    from ..obs.causal import CausalGraph
    from ..runtime.program import Program

    if len(script) < 2:
        return None
    try:
        program = Program(src)
        graph = program.observe(CausalGraph(program.hooks))
        ranges: list[Optional[tuple[int, int]]] = []
        before = 0
        try:
            program.start()
            for item in script:
                if program.done:
                    ranges.append(None)
                    continue
                before = program.sched.reaction_count
                if item[0] == "E":
                    program.send(item[1], item[2])
                else:
                    program.at(item[1])
                ranges.append((before, program.sched.reaction_count))
        except Exception:
            # a crashing replay still has a (partial) cone; the item
            # being fed when the VM died gets the in-flight reaction
            if len(ranges) < len(script):
                ranges.append((before, program.sched.reaction_count))
        last = program.sched.reaction_count - 1
    except CeuError:
        return None
    if last < 1:
        return None
    ranges += [None] * (len(script) - len(ranges))
    cone = graph.reaction_cone(last)
    kept = [item for item, rng in zip(script, ranges)
            if rng is not None
            and any(r in cone for r in range(rng[0], rng[1]))]
    return kept if len(kept) < len(script) else None


class _Shrinker:
    def __init__(self, predicate: Predicate, max_tests: int):
        self.predicate = predicate
        self.max_tests = max_tests
        self.tests = 0
        self.cache: dict = {}

    def still_fails(self, src: str, script: list) -> bool:
        key = (src, tuple(map(tuple, script)))
        if key in self.cache:
            return self.cache[key]
        if self.tests >= self.max_tests:
            return False
        self.tests += 1
        try:
            check_bounded(bind(parse(src)))
        except CeuError:
            self.cache[key] = False
            return False
        except RecursionError:      # pathological candidate
            self.cache[key] = False
            return False
        try:
            verdict = bool(self.predicate(src, script))
        except Exception:
            verdict = False
        self.cache[key] = verdict
        return verdict

    # ---------------------------------------------------------- script pass
    def ddmin_script(self, src: str, script: list) -> list:
        """Classic ddmin on the event script."""
        items = list(script)
        chunk = max(1, len(items) // 2)
        while chunk >= 1:
            i = 0
            progressed = False
            while i < len(items):
                candidate = items[:i] + items[i + chunk:]
                if self.still_fails(src, candidate):
                    items = candidate
                    progressed = True
                else:
                    i += chunk
            chunk = chunk // 2 if not progressed else max(1, chunk // 2)
        return items

    # --------------------------------------------------------- program pass
    def _line_span(self, node: ast.Node) -> tuple[int, int]:
        return node.span.start.line, node.span.end.line

    def _candidates(self, src: str) -> list[tuple[str, str]]:
        """Structure-aware rewrites of ``src``, biggest cut first.

        Each candidate is (label, new_src).  Uses the AST's spans; a
        rewrite replaces the *enclosing* statement's line range either
        with nothing (statement deletion) or with the lines of one of
        its sub-blocks (branch/body lifting).
        """
        try:
            program = parse(src)
        except CeuError:
            return []
        lines = src.splitlines()
        out: list[tuple[int, str, str]] = []

        def cut(label: str, lo: int, hi: int,
                replacement: Optional[list[str]] = None) -> None:
            if lo < 1 or hi > len(lines) or lo > hi:
                return
            new = lines[:lo - 1] + (replacement or []) + lines[hi:]
            if len(new) < len(lines):
                out.append((hi - lo + 1 - len(replacement or []),
                            label, "\n".join(new)))

        for node in program.walk():
            if not isinstance(node, ast.Stmt):
                continue
            lo, hi = self._line_span(node)
            cut(f"del {type(node).__name__}@{lo}", lo, hi)
            if isinstance(node, ast.ParStmt):
                for block in node.blocks:
                    blo, bhi = self._line_span(block)
                    cut(f"lift par branch@{blo}", lo, hi,
                        lines[blo - 1:bhi])
            elif isinstance(node, ast.If):
                for block in filter(None, (node.then, node.orelse)):
                    blo, bhi = self._line_span(block)
                    cut(f"lift if arm@{blo}", lo, hi,
                        lines[blo - 1:bhi])
            elif isinstance(node, (ast.Loop, ast.DoBlock)):
                blo, bhi = self._line_span(node.body)
                cut(f"lift body@{blo}", lo, hi, lines[blo - 1:bhi])
        # biggest cuts first: fewer predicate calls to the minimum
        out.sort(key=lambda item: -item[0])
        return [(label, new_src) for _, label, new_src in out]

    def shrink_src(self, src: str, script: list) -> str:
        while True:
            for _label, candidate in self._candidates(src):
                if candidate != src and self.still_fails(candidate, script):
                    src = candidate
                    break
            else:
                return src

    def ddmin_lines(self, src: str, script: list) -> str:
        """Final sweep: raw line removal catches what spans missed
        (e.g. now-unused declarations sharing a line)."""
        lines = src.splitlines()
        chunk = max(1, len(lines) // 2)
        while chunk >= 1:
            i = 0
            while i < len(lines):
                candidate = "\n".join(lines[:i] + lines[i + chunk:])
                if self.still_fails(candidate, script):
                    lines = candidate.splitlines()
                else:
                    i += chunk
            chunk //= 2
        return "\n".join(lines)


def shrink(src: str, script: list, predicate: Predicate,
           max_tests: int = 2_000, max_rounds: int = 10) -> ShrinkResult:
    """Minimise a failing (program, script) pair.

    ``predicate(src, script)`` must return True while the failure
    reproduces; it is never called on ill-formed programs.  The original
    pair must fail — otherwise the inputs are returned unchanged.
    """
    worker = _Shrinker(predicate, max_tests)
    if not worker.still_fails(src, script):
        return ShrinkResult(src=src, script=script, rounds=0,
                            tests=worker.tests)
    script, sliced = _slice_first(worker, src, script)
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        before = (src, len(script))
        script = worker.ddmin_script(src, script)
        src = worker.shrink_src(src, script)
        src = worker.ddmin_lines(src, script)
        if (src, len(script)) == before:
            break
    return ShrinkResult(src=src, script=script, rounds=rounds,
                        tests=worker.tests, sliced=sliced)


def _slice_first(worker: _Shrinker, src: str,
                 script: list) -> tuple[list, bool]:
    """The causal pre-pass: accept the cone projection only if the
    failure still reproduces on it."""
    try:
        candidate = causal_cone_script(src, script)
    except Exception:
        candidate = None
    if candidate is not None and worker.still_fails(src, candidate):
        return candidate, True
    return script, False


def shrink_script(src: str, script: list, predicate: Predicate,
                  max_tests: int = 500) -> ShrinkResult:
    """Minimise only the stimulus script, keeping ``src`` untouched.

    This is the witness-minimisation entry point
    (:mod:`repro.analysis.witness`): lint witnesses must report the
    user's program verbatim, so only the replay script shrinks — causal
    slice first, then ddmin.
    """
    worker = _Shrinker(predicate, max_tests)
    if not worker.still_fails(src, script):
        return ShrinkResult(src=src, script=script, rounds=0,
                            tests=worker.tests)
    script, sliced = _slice_first(worker, src, script)
    script = worker.ddmin_script(src, script)
    return ShrinkResult(src=src, script=script, rounds=1,
                        tests=worker.tests, sliced=sliced)
