"""Differential oracles: run one (program, script) pair on several
executable semantics and compare everything observable.

Backends and oracles:

* **VM** — the reference interpreter (:class:`repro.runtime.Program`),
  traced so :meth:`Trace.portable_signature` is available;
* **C** — the §4.4 backend compiled with ``gcc -DCEU_HOOKS``: the
  generated driver reports status/return/output on stdout and the
  portable signature (one ``==SIG``/``==EMIT`` line per reaction /
  internal emit) on stderr;
* **spec** — the executable reference semantics
  (:mod:`repro.semantics`): a pure small-step machine over the bound
  AST, sharing no scheduler machinery with the VM, compared on the
  *full* trace signature (``--oracle semantics``);
* **replay** — the VM run twice: §2.8 demands bit-identical traces,
  memory, and output;
* **analyses** — parse/bind/§2.5 must accept every generated program,
  the §2.6 temporal analysis classifies it, and an accepted program must
  never crash the runtime.

`check_case` stacks them and returns the list of
:class:`OracleFailure` records (empty = all oracles agree).
"""

from __future__ import annotations

import re
import shutil
import subprocess
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..dfa import build_dfa
from ..lang import parse
from ..lang.errors import CeuError
from ..runtime import Program
from ..sema import bind, check_bounded
from .gen import GenCase, script_text

Script = list  # [("E", name, value) | ("T", abs_us)]


def has_gcc() -> bool:
    """Single source of truth for gcc availability (tests and CLI)."""
    return shutil.which("gcc") is not None


# ---------------------------------------------------------------------------
# backend runs
# ---------------------------------------------------------------------------

@dataclass
class RunResult:
    """What one backend observed for one (program, script) pair."""

    backend: str                       # "vm" | "c" | "spec"
    ok: bool = True                    # the harness itself succeeded
    error: Optional[str] = None        # exception / compiler message
    done: Optional[bool] = None
    result: Optional[int] = None       # return value (when done)
    output: str = ""                   # everything _printf'ed
    signature: Optional[tuple] = None  # full VM signature (VM only)
    psig: Optional[tuple] = None       # portable cross-backend signature
    memory: Optional[dict] = None      # final memory snapshot (VM only)
    stats: Optional[dict] = None       # metrics snapshot (VM, observe=True)

    def observable(self) -> tuple:
        """The cross-backend comparison key (no-return normalises to 0)."""
        result = (self.result if self.result is not None else 0) \
            if self.done else None
        return (self.done, result, self.output, self.psig)


def drive_vm(program: Program, script: Script) -> None:
    program.start()
    for item in script:
        if program.done:
            break
        if item[0] == "E":
            program.send(item[1], item[2])
        else:
            program.at(item[1])


def run_vm(src: str, script: Script, trace: bool = True,
           observe: bool = False,
           reverse_seeds: bool = False) -> RunResult:
    """Execute on the reference VM; any exception is the caller's bug.

    ``observe`` attaches the metrics collector and fills ``stats`` (the
    static-bounds oracle reads the high-water gauges); ``reverse_seeds``
    flips every intra-reaction seeding order the semantics leaves open
    (the schedule-independence oracle).
    """
    res = RunResult(backend="vm")
    try:
        program = Program(src, trace=trace, observe=observe,
                          reverse_seeds=reverse_seeds)
        drive_vm(program, script)
    except Exception:
        res.ok = False
        res.error = traceback.format_exc(limit=8)
        return res
    res.done = program.done
    res.result = program.result if program.done else None
    res.output = program.output()
    if trace:
        res.signature = program.trace.signature()
        res.psig = program.trace.portable_signature()
    res.memory = program.sched.memory.snapshot()
    if observe:
        res.stats = program.stats()
    return res


def run_semantics(src: str, script: Script) -> RunResult:
    """Execute on the executable reference semantics (the *spec*
    backend).  Fills the same fields as :func:`run_vm` so the two plug
    into the same comparators."""
    from ..semantics import run_script as _spec_run

    res = RunResult(backend="spec")
    try:
        machine = _spec_run(src, script)
    except Exception:
        res.ok = False
        res.error = traceback.format_exc(limit=8)
        return res
    res.done = machine.done
    res.result = machine.result if machine.done else None
    res.output = machine.output()
    res.signature = machine.signature()
    res.psig = machine.portable_signature()
    res.memory = machine.memory_snapshot()
    return res


def _parse_c_stdout(out: str) -> tuple[str, bool, int]:
    body, tail = out.rsplit("==DONE=", 1)
    done = tail.startswith("1")
    ret = int(tail.split("RET=")[1].split("==")[0])
    return body, done, ret


def _parse_c_psig(err: str) -> tuple:
    """Reassemble the portable signature from ``==SIG``/``==EMIT`` lines."""
    reactions: list[tuple[str, list[str]]] = []
    for line in err.splitlines():
        if line.startswith("==SIG "):
            reactions.append((line[len("==SIG "):].strip(), []))
        elif line.startswith("==EMIT ") and reactions:
            reactions[-1][1].append(line[len("==EMIT "):].strip())
    return tuple((trigger, tuple(emits)) for trigger, emits in reactions)


def run_c(src: str, script: Script, workdir, name: str = "prog",
          hooks: bool = True, mutate: Optional[Callable[[str], str]] = None,
          opt: str = "-O1", timeout: int = 60) -> RunResult:
    """Compile through the §4.4 backend and run the generated driver.

    ``mutate`` post-processes the generated C — the fault-injection hook
    used to prove the oracles and the shrinker catch real bugs.
    """
    from ..codegen import compile_to_c

    res = RunResult(backend="c")
    try:
        compiled = compile_to_c(bind(parse(src)), name=name)
    except CeuError as err:
        res.ok = False
        res.error = f"compile_to_c: {err}"
        return res
    code = compiled.code
    if mutate is not None:
        code = mutate(code)
    workdir = Path(workdir)
    c_path = workdir / f"{name}.c"
    c_path.write_text(code)
    exe = workdir / name
    cmd = ["gcc", opt] + (["-DCEU_HOOKS"] if hooks else []) + \
          ["-o", str(exe), str(c_path)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        res.ok = False
        res.error = f"gcc: {proc.stderr[:2000]}"
        return res
    try:
        run = subprocess.run([str(exe)], input=script_text(script),
                             capture_output=True, text=True,
                             timeout=timeout)
    except subprocess.TimeoutExpired:
        res.ok = False
        res.error = "generated binary timed out"
        return res
    try:
        res.output, res.done, ret = _parse_c_stdout(run.stdout)
    except (ValueError, IndexError):
        res.ok = False
        res.error = f"unparseable driver output: {run.stdout[-500:]!r}"
        return res
    res.result = ret if res.done else None
    if hooks:
        res.psig = _parse_c_psig(run.stderr)
    return res


# ---------------------------------------------------------------------------
# fault injection (to validate the pipeline end to end)
# ---------------------------------------------------------------------------

def _fault_minus_to_plus(code: str) -> str:
    """Miscompile subtraction (and timer deltas) to addition."""
    return code.replace(" - ", " + ")

def _fault_drop_emit(code: str) -> str:
    """Lose every internal-event broadcast."""
    return "\n".join(line for line in code.splitlines()
                     if not line.strip().startswith("ceu_bcast("))

def _fault_swap_join(code: str) -> str:
    """Run rejoin continuations at normal priority (§4.1 glitch)."""
    return re.sub(r"ceu_spawn\([1-9]\d*, ", "ceu_spawn(0, ", code)

FAULTS: dict[str, Callable[[str], str]] = {
    "minus-to-plus": _fault_minus_to_plus,
    "drop-emit": _fault_drop_emit,
    "flat-prio": _fault_swap_join,
}


# ---------------------------------------------------------------------------
# the oracle stack
# ---------------------------------------------------------------------------

@dataclass
class OracleFailure:
    """One oracle disagreement, with everything needed to reproduce."""

    oracle: str                 # "well-formed" | "vm-crash" | "replay"
                                # | "static-bounds" | "schedule"
                                # | "vm-vs-c" | "vm-vs-spec"
    seed: int
    src: str
    script: Script
    details: dict = field(default_factory=dict)

    def summary(self) -> str:
        keys = ", ".join(sorted(self.details))
        return f"[{self.oracle}] seed={self.seed} ({keys})"


def analyses_verdict(src: str, max_states: int = 5_000) -> str:
    """``accept`` / ``refuse`` (nondeterminism witness) / ``giveup``
    (state-space cap) for the §2.6 temporal analysis."""
    bound = bind(parse(src))
    try:
        dfa = build_dfa(bound, max_states=max_states)
    except CeuError:
        return "giveup"
    return "refuse" if dfa.conflicts else "accept"


def bounds_violations(bounds, stats: dict) -> dict:
    """Compare a run's observed high-water marks against the static
    resource bounds; returns ``{metric: {"observed", "bound"}}`` for
    every violation (empty = the bounds are sound for this run)."""
    gauges = stats.get("gauges", {})
    hists = stats.get("histograms", {})

    def hw(name: str) -> int:
        return gauges.get(name, {}).get("max", 0)

    checks = {
        "max_trails": (hw("live_trails"), bounds.max_trails),
        "max_armed_timers": (hw("armed_timers"),
                             bounds.max_armed_timers),
        "max_async_jobs": (hw("async_jobs_live"), bounds.max_async_jobs),
        "mem_slots": (hw("memory_slots"), bounds.mem_slots),
        "max_internal_emits": (hw("emits_per_reaction"),
                               bounds.max_internal_emits),
        # each nested emit pushes the §2.2 stack at most once, so the
        # per-reaction emit count also bounds the stack depth
        "emit_stack_depth": (hists.get("emit_stack_depth",
                                       {}).get("max") or 0,
                             bounds.max_internal_emits),
    }
    return {name: {"observed": observed, "bound": bound_}
            for name, (observed, bound_) in checks.items()
            if observed > bound_}


def canon_psig(psig: Optional[tuple]) -> Optional[tuple]:
    """Schedule-independent view of a portable signature: the emit *set*
    per reaction.  Concurrent trails may emit *different* internal
    events in one reaction in either order without the temporal analysis
    objecting — only the per-reaction multiset is semantics."""
    if psig is None:
        return None
    return tuple((trigger, tuple(sorted(emits)))
                 for trigger, emits in psig)


def canon_sig(sig: Optional[tuple]) -> Optional[tuple]:
    """Process-independent view of a *full* signature: ``async:N``
    triggers renumbered by first appearance.  The VM's async job counter
    is process-global (every job in a Python process gets a fresh N), so
    raw signatures of the same run differ across processes — and from
    the reference semantics, whose counter is per-machine."""
    if sig is None:
        return None
    mapping: dict[str, str] = {}
    out = []
    for trigger, steps, emits in sig:
        if trigger.startswith("async:"):
            trigger = mapping.setdefault(trigger,
                                         f"async:#{len(mapping) + 1}")
        out.append((trigger, steps, emits))
    return tuple(out)


def _diff_spec(vm: RunResult, spec: RunResult) -> dict:
    """VM ↔ reference-semantics comparison: the *full* signature (every
    step of every reaction), plus status/result/output/memory."""
    details: dict = {}
    if vm.done != spec.done:
        details["status"] = {"vm": vm.done, "spec": spec.done}
    if vm.done and spec.done and vm.result != spec.result:
        details["result"] = {"vm": vm.result, "spec": spec.result}
    if vm.output != spec.output:
        details["output"] = {"vm": vm.output, "spec": spec.output}
    a, b = canon_sig(vm.signature), canon_sig(spec.signature)
    if a is not None and b is not None and a != b:
        for i, (ra, rb) in enumerate(zip(a, b)):
            if ra != rb:
                details["signature"] = {"first_diff": i, "vm": ra,
                                        "spec": rb}
                break
        else:
            details["signature"] = {"length": {"vm": len(a),
                                               "spec": len(b)}}
    if vm.memory is not None and spec.memory is not None \
            and vm.memory != spec.memory:
        details["memory"] = {"vm": vm.memory, "spec": spec.memory}
    return details


def three_way_attribution(vm: RunResult, c: RunResult,
                          spec: RunResult) -> dict:
    """Given all three backends, vote on the portable signatures: the
    odd one out is (probably) the buggy backend.  ``odd_one_out`` is
    None when all agree, a backend name under a 2-vs-1 split, or
    ``"all"`` when no two agree."""
    pv, pc, ps = (canon_psig(vm.psig), canon_psig(c.psig),
                  canon_psig(spec.psig))
    agree = {"vm==c": pv == pc, "vm==spec": pv == ps, "c==spec": pc == ps}
    if agree["vm==c"] and agree["vm==spec"]:
        odd = None
    elif agree["vm==spec"]:
        odd = "c"
    elif agree["c==spec"]:
        odd = "vm"
    elif agree["vm==c"]:
        odd = "spec"
    else:
        odd = "all"
    return {"odd_one_out": odd, "agreement": agree}


def _diff(vm: RunResult, c: RunResult) -> dict:
    details: dict = {}
    if vm.done != c.done:
        details["status"] = {"vm": vm.done, "c": c.done}
    # a program that terminates without `return` is None on the VM but 0
    # in C (CEU_RET's initial value) — the same observable
    if (vm.done and c.done
            and (vm.result if vm.result is not None else 0) != c.result):
        details["result"] = {"vm": vm.result, "c": c.result}
    if vm.output != c.output:
        details["output"] = {"vm": vm.output, "c": c.output}
    if (vm.psig is not None and c.psig is not None
            and vm.psig != c.psig):
        for i, (a, b) in enumerate(zip(vm.psig, c.psig)):
            if a != b:
                details["psig"] = {"first_diff": i, "vm": a, "c": b}
                break
        else:
            details["psig"] = {"length": {"vm": len(vm.psig),
                                          "c": len(c.psig)}}
    return details


def check_case(case: GenCase, workdir=None, use_c: bool = True,
               mutate: Optional[Callable[[str], str]] = None,
               use_semantics: bool = False,
               stats_out: Optional[dict] = None,
               ) -> tuple[str, list[OracleFailure]]:
    """Run the full oracle stack on one case.

    Returns ``(verdict, failures)`` where ``verdict`` is the temporal
    analysis verdict ("accept"/"refuse"/"giveup"/"ill-formed").  The
    VM↔C and schedule-independence oracles only apply to accepted
    programs — the language only promises determinism for those — the
    static-bounds oracle to every program the DFA covered, and replay,
    no-crash, and (with ``use_semantics``) the VM↔spec differential to
    every well-formed program.

    ``stats_out``, when given, receives per-case coverage counters
    (``reactions`` / ``nonboot_reactions``) so the runner can reject
    trivial cases whose oracles pass vacuously.
    """
    failures: list[OracleFailure] = []

    def fail(oracle: str, **details) -> None:
        failures.append(OracleFailure(oracle=oracle, seed=case.seed,
                                      src=case.src, script=case.script,
                                      details=details))

    # 1. generated programs are well-formed by construction
    try:
        bound = bind(parse(case.src))
        check_bounded(bound)
    except CeuError as err:
        fail("well-formed", error=str(err))
        return "ill-formed", failures
    try:
        dfa = build_dfa(bound, max_states=5_000)
        verdict = "refuse" if dfa.conflicts else "accept"
    except CeuError:
        dfa = None
        verdict = "giveup"
    except Exception:
        fail("well-formed", error=traceback.format_exc(limit=8))
        return "ill-formed", failures

    # 2. the runtime never crashes on a well-formed program
    vm = run_vm(case.src, case.script)
    if stats_out is not None and vm.ok and vm.signature is not None:
        stats_out["reactions"] = len(vm.signature)
        stats_out["nonboot_reactions"] = sum(
            1 for r in vm.signature if r[0] != "boot")
    if not vm.ok:
        # a crashing program must crash the spec identically
        if use_semantics:
            spec = run_semantics(case.src, case.script)
            if spec.ok:
                fail("vm-vs-spec", error="VM crashed, spec did not",
                     vm_error=vm.error)
        fail("vm-crash", error=vm.error, verdict=verdict)
        return verdict, failures

    # 3. §2.8 replay determinism: same inputs, bit-identical behaviour
    #    (the replay run carries the metrics collector for oracle 4 —
    #    observation is passive and must not perturb the signature)
    vm2 = run_vm(case.src, case.script, observe=True)
    if not vm2.ok:
        fail("vm-crash", error=vm2.error, verdict=verdict, replay=True)
        return verdict, failures
    if (vm.signature != vm2.signature or vm.output != vm2.output
            or vm.result != vm2.result or vm.done != vm2.done
            or vm.memory != vm2.memory):
        fail("replay", first={"output": vm.output, "result": vm.result},
             second={"output": vm2.output, "result": vm2.result})

    # 4. static resource bounds dominate the observed high-water marks
    #    (sound for accepted AND refused programs: the DFA still covers
    #    every path, it merely also found a conflict)
    if dfa is not None and vm2.stats is not None:
        from ..analysis.bounds import compute_bounds

        bounds = compute_bounds(bound, dfa)
        violations = bounds_violations(bounds, vm2.stats)
        if violations:
            fail("static-bounds", violations=violations,
                 bounds=bounds.as_dict(), verdict=verdict)

    # 5. schedule independence: a statically-clean program must behave
    #    identically under every seeding order the semantics leaves open
    if verdict == "accept":
        vmr = run_vm(case.src, case.script, reverse_seeds=True)
        if not vmr.ok:
            fail("schedule", error=vmr.error, reverse_seeds=True)
        elif (vm.done != vmr.done or vm.result != vmr.result
                or vm.output != vmr.output or vm.memory != vmr.memory
                or canon_psig(vm.psig) != canon_psig(vmr.psig)):
            fail("schedule",
                 forward={"output": vm.output, "result": vm.result,
                          "psig": vm.psig},
                 reversed={"output": vmr.output, "result": vmr.result,
                           "psig": vmr.psig})

    # 6. VM ↔ spec: the executable reference semantics must reproduce
    #    the VM's *full* trace on every well-formed program (both are
    #    sequential and canonical, so this holds for refused programs
    #    too — determinism of each implementation, not of the language)
    spec = None
    if use_semantics:
        spec = run_semantics(case.src, case.script)
        if not spec.ok:
            fail("vm-vs-spec", error=spec.error)
            spec = None
        else:
            details = _diff_spec(vm, spec)
            if details:
                fail("vm-vs-spec", **details)

    # 7. VM ↔ C differential (accepted programs, gcc available), with
    #    three-way odd-one-out attribution when the spec also ran
    if use_c and verdict == "accept" and has_gcc() and workdir is not None:
        c = run_c(case.src, case.script, workdir,
                  name=f"fz{case.seed}", mutate=mutate)
        if not c.ok:
            fail("vm-vs-c", error=c.error)
        else:
            details = _diff(vm, c)
            if spec is not None and (details or any(
                    f.oracle == "vm-vs-spec" for f in failures)):
                attribution = three_way_attribution(vm, c, spec)
                if details:
                    details["three_way"] = attribution
                for f in failures:
                    if f.oracle == "vm-vs-spec":
                        f.details.setdefault("three_way", attribution)
            if details:
                fail("vm-vs-c", **details)
    return verdict, failures
