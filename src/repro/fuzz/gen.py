"""Seeded Céu program generator (the fuzzer's front half).

Every generated program is, **by construction**:

* *well-formed* — it parses, binds, and passes the §2.5 bounded-execution
  analysis (each loop body leads with an ``await`` and escapes through a
  counter);
* *terminating under its script* — the generator charges every ``await``
  it emits (times loop iterations) against an await budget, and the
  paired event script supplies at least one occurrence of every stimulus
  per budget unit, so the final ``return <checksum>;`` is always reached;
* *deterministic-by-construction with high probability* — concurrent
  branches own disjoint variables and disjoint await-stimuli, and
  observable actions (``_printf``, ``emit``) ride only on branch-unique
  event wakeups, so the §2.6 temporal analysis accepts the vast majority
  of programs and the VM↔C diff applies to them (refused programs still
  exercise the replay and no-crash oracles);
* *C-safe arithmetically* — products are immediately reduced modulo a
  small constant and all other operands stay tiny, so Python's unbounded
  ints and C's 32-bit ``int`` agree (the VM already matches C's
  truncated ``/`` and ``%``).

The per-feature weights in :class:`GenConfig` steer coverage: nested
``par/and``/``par/or``, internal-event emit chains (the §2.2 stack
policy), value and timer awaits, loops with escapes, value ``do`` blocks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

EXT_EVENTS = ("A", "B", "C")
TIMERS_MS = (10, 20, 30, 50, 70, 100)
ROUND_US = 100_000          # the script advances time 100ms per round
MULT_MOD = (97, 101, 251)   # products are reduced mod one of these

DEFAULT_WEIGHTS: dict[str, float] = {
    "assign": 2.5,
    "printf": 1.0,
    "await_ext": 1.5,
    "await_val": 1.0,
    "await_time": 1.2,
    "if": 1.2,
    "loop": 0.8,
    "par": 1.0,
    "emit_chain": 0.9,
    "do_value": 0.4,
}


@dataclass(frozen=True)
class GenConfig:
    """Knobs for one generator profile (all deterministic given a seed)."""

    n_vars: int = 6
    n_void_internal: int = 2      # signal-only internal events (i0, i1…)
    n_int_internal: int = 2       # valued internal events (x0, x1…)
    max_depth: int = 3            # nesting budget for par/if/loop/do
    top_stmts: tuple[int, int] = (5, 10)
    block_stmts: tuple[int, int] = (1, 4)
    await_budget: int = 40
    loop_iters: tuple[int, int] = (2, 3)
    max_par_branches: int = 3
    prio_gadgets: int = 0         # §4.1 join-priority gadgets per program
    weights: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS))

    def weight(self, name: str) -> float:
        return self.weights.get(name, 0.0)


#: the default differential-testing profile
DIFF = GenConfig()

#: edge profiles used to mint the checked-in corpus (tests/corpus/)
CORPUS_PROFILES: dict[str, GenConfig] = {
    "deep": replace(DIFF, max_depth=6, weights={
        **DEFAULT_WEIGHTS, "par": 3.0, "if": 2.0, "loop": 1.5,
        "assign": 1.5}),
    "emit": replace(DIFF, n_void_internal=3, n_int_internal=3, weights={
        **DEFAULT_WEIGHTS, "emit_chain": 4.0, "par": 1.5}),
    "timer": replace(DIFF, weights={
        **DEFAULT_WEIGHTS, "await_time": 4.0, "loop": 1.5,
        "await_ext": 0.5}),
}

#: the schedule-diversity profile: every program carries nested-rejoin
#: gadgets whose emit ordering is observable in the portable signature,
#: so a backend that runs §4.1 join continuations at flat priority
#: diverges from the glitch-free VM (the blind spot the plain profiles
#: left: their parallels rarely rejoin *and* observe the join order)
PRIO = replace(DIFF, prio_gadgets=3, top_stmts=(2, 5))

#: every profile the CLI accepts (``repro fuzz --profile``)
PROFILES: dict[str, GenConfig] = {
    "diff": DIFF, **CORPUS_PROFILES, "prio": PRIO,
}


@dataclass
class GenCase:
    """One fuzz case: the program, its event script, and provenance."""

    seed: int
    src: str
    script: list[tuple]   # ("E", event, value) | ("T", abs_us)
    profile: str = "diff"

    def src_lines(self) -> int:
        return len(self.src.splitlines())


def script_text(script: list[tuple]) -> str:
    """Render a script in the C driver's ``E name val`` / ``T us`` form."""
    out = []
    for item in script:
        if item[0] == "E":
            if item[2] is None:      # void event: no payload column
                out.append(f"E {item[1]}")
            else:
                out.append(f"E {item[1]} {item[2]}")
        else:
            out.append(f"T {item[1]}")
    return "\n".join(out) + "\n"


def parse_script_text(text: str) -> list[tuple]:
    """Inverse of :func:`script_text` (``repro run --inputs FILE``).

    One stimulus per line — ``E NAME [VALUE]`` delivers an external
    event, ``T US`` advances absolute time; blank lines and ``#``
    comments are skipped.
    """
    script: list[tuple] = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "E" and len(parts) in (2, 3):
            value = int(parts[2]) if len(parts) == 3 else 0
            script.append(("E", parts[1], value))
        elif parts[0] == "T" and len(parts) == 2:
            script.append(("T", int(parts[1])))
        else:
            raise ValueError(
                f"script line {lineno}: expected 'E NAME [VALUE]' or "
                f"'T US', got {raw!r}")
    return script


class _Scope:
    """What a sequential context may touch.

    ``exclusive`` contexts (top level, or any code that no sibling runs
    concurrently with) may use every resource; ``par`` branches receive
    disjoint slices of their parent's variables, events, and internal
    events, which is what keeps generated programs deterministic.
    """

    def __init__(self, variables: list[str], events: list[str],
                 consume_void: list[str], consume_int: list[str],
                 emit_void: list[str], emit_int: list[str],
                 exclusive: bool):
        self.variables = variables
        self.events = events              # external events this scope awaits
        self.consume_void = consume_void  # internal events it may await
        self.consume_int = consume_int
        self.emit_void = emit_void        # internal events it may emit
        self.emit_int = emit_int
        self.exclusive = exclusive


class ProgramGen:
    """Seeded generator: ``ProgramGen(seed).case()`` → :class:`GenCase`."""

    def __init__(self, seed: int, config: GenConfig = DIFF,
                 profile: str = "diff"):
        self.seed = seed
        self.config = config
        self.profile = profile
        self.rng = random.Random(seed)
        self.lines: list[str] = []
        self.awaits = 0          # worst-case awaits on any sequential path
        self.printed = 0
        self.fresh = 0           # fresh-name counter (loop counters …)

    # ------------------------------------------------------------ plumbing
    def out(self, text: str, depth: int) -> None:
        self.lines.append("   " * depth + text)

    def fresh_var(self, prefix: str) -> str:
        self.fresh += 1
        return f"{prefix}{self.fresh}"

    def split(self, items: list, n: int) -> list[list]:
        """Partition ``items`` into ``n`` disjoint (possibly empty) slices."""
        slots: list[list] = [[] for _ in range(n)]
        for item in items:
            slots[self.rng.randrange(n)].append(item)
        return slots

    def choose(self, options: list[str]) -> str:
        weights = [self.config.weight(name) for name in options]
        if not any(w > 0 for w in weights):
            return options[0]
        return self.rng.choices(options, weights=weights)[0]

    # ---------------------------------------------------------- expressions
    def rand_exp(self, scope: _Scope) -> str:
        """A C-safe, bounded-magnitude right-hand side."""
        var = self.rng.choice(scope.variables)
        roll = self.rng.random()
        small = self.rng.randrange(1, 9)
        if roll < 0.35:
            op = self.rng.choice(["+", "-"])
            return f"({var} {op} {small})"
        if roll < 0.55 and len(scope.variables) > 1:
            # var-on-var sums are reduced immediately: unreduced they can
            # double per step, overflowing C's int while Python shrugs
            other = self.rng.choice(scope.variables)
            op = self.rng.choice(["+", "-"])
            return f"(({var} {op} {other}) % 100003)"
        if roll < 0.75:
            mod = self.rng.choice(MULT_MOD)
            return f"(({var} * {small}) % {mod})"
        if roll < 0.85:
            mod = self.rng.choice(MULT_MOD)
            return f"({var} % {mod})"
        return str(self.rng.randrange(0, 100))

    def rand_cond(self, scope: _Scope) -> str:
        var = self.rng.choice(scope.variables)
        roll = self.rng.random()
        if roll < 0.4:
            return f"{var} % 2"
        if roll < 0.7:
            return f"{var} {self.rng.choice(['>', '<', '>='])} " \
                   f"{self.rng.randrange(0, 50)}"
        if len(scope.variables) > 1:
            other = self.rng.choice(scope.variables)
            return f"{var} {self.rng.choice(['==', '!=', '<'])} {other}"
        return f"{var} == {self.rng.randrange(0, 10)}"

    # -------------------------------------------------- zero-time actions
    def action(self, scope: _Scope, depth: int,
               observable: bool = True) -> None:
        """One zero-time statement.  ``observable=False`` restricts to
        assignments (used after timer wakeups inside ``par`` branches,
        where two trails may share a reaction and ordering is the
        backends' own business)."""
        options = ["assign"]
        if observable:
            options.append("printf")
            if scope.emit_void or scope.emit_int:
                options.append("emit_chain")
        kind = self.choose(options)
        if kind == "printf":
            self.printed += 1
            var = self.rng.choice(scope.variables)
            self.out(f'_printf("p{self.printed} %d\\n", {var});', depth)
        elif kind == "emit_chain" and (scope.emit_void or scope.emit_int):
            pool = ([("void", e) for e in scope.emit_void]
                    + [("int", e) for e in scope.emit_int])
            evkind, name = self.rng.choice(pool)
            if evkind == "void":
                self.out(f"emit {name};", depth)
            else:
                self.out(f"emit {name} = {self.rand_exp(scope)};", depth)
        else:
            var = self.rng.choice(scope.variables)
            self.out(f"{var} = {self.rand_exp(scope)};", depth)

    # --------------------------------------------------------- statements
    def stmt(self, scope: _Scope, depth: int, nest: int) -> None:
        options = ["assign", "printf", "await_ext", "await_val",
                   "await_time"]
        if nest < self.config.max_depth:
            options += ["if", "loop", "do_value"]
            if scope.exclusive and len(scope.variables) >= 2:
                options.append("par")
        kind = self.choose(options)
        if kind == "assign":
            var = self.rng.choice(scope.variables)
            self.out(f"{var} = {self.rand_exp(scope)};", depth)
        elif kind == "printf":
            self.printed += 1
            var = self.rng.choice(scope.variables)
            self.out(f'_printf("p{self.printed} %d\\n", {var});', depth)
        elif kind == "await_ext" and scope.events:
            self.awaits += 1
            self.out(f"await {self.rng.choice(scope.events)};", depth)
        elif kind == "await_val" and scope.events:
            self.awaits += 1
            var = self.rng.choice(scope.variables)
            self.out(f"{var} = await {self.rng.choice(scope.events)};",
                     depth)
        elif kind == "await_time":
            self.awaits += 1
            self.out(f"await {self.rng.choice(TIMERS_MS)}ms;", depth)
        elif kind == "if":
            self.out(f"if {self.rand_cond(scope)} then", depth)
            self.block(scope, depth + 1, nest + 1, allow_await=True)
            if self.rng.random() < 0.6:
                self.out("else", depth)
                self.block(scope, depth + 1, nest + 1, allow_await=True)
            self.out("end", depth)
        elif kind == "loop":
            self.gen_loop(scope, depth, nest)
        elif kind == "par":
            self.gen_par(scope, depth, nest)
        elif kind == "do_value":
            var = self.rng.choice(scope.variables)
            self.out(f"{var} = do", depth)
            for _ in range(self.rng.randrange(0, 2)):
                self.action(scope, depth + 1, observable=scope.exclusive)
            self.out(f"return {self.rand_exp(scope)};", depth + 1)
            self.out("end", depth)
        else:  # fallbacks when a pick was unavailable in this scope
            var = self.rng.choice(scope.variables)
            self.out(f"{var} = {self.rand_exp(scope)};", depth)

    def block(self, scope: _Scope, depth: int, nest: int,
              allow_await: bool) -> None:
        lo, hi = self.config.block_stmts
        for _ in range(self.rng.randrange(lo, hi + 1)):
            if allow_await and self.awaits < self.config.await_budget:
                self.stmt(scope, depth, nest)
            else:
                self.action(scope, depth, observable=scope.exclusive)

    # --------------------------------------------------------------- loops
    def gen_loop(self, scope: _Scope, depth: int, nest: int) -> None:
        """``loop do await …; <body>; k = k + 1; if k >= N break end`` —
        the leading await satisfies §2.5, the counter bounds the script."""
        counter = self.fresh_var("k")
        lo, hi = self.config.loop_iters
        iters = self.rng.randrange(lo, hi + 1)
        # the loop body's awaits are paid once per iteration
        before = self.awaits
        self.out(f"int {counter} = 0;", depth)
        self.out("loop do", depth)
        self.awaits += 1  # the leading await
        if scope.events and self.rng.random() < 0.7:
            self.out(f"await {self.rng.choice(scope.events)};", depth + 1)
        else:
            self.out(f"await {self.rng.choice(TIMERS_MS)}ms;", depth + 1)
        self.block(scope, depth + 1, nest + 1,
                   allow_await=self.rng.random() < 0.4)
        self.out(f"{counter} = {counter} + 1;", depth + 1)
        self.out(f"if {counter} >= {iters} then", depth + 1)
        self.out("break;", depth + 2)
        self.out("end", depth + 1)
        self.out("end", depth)
        # charge the extra iterations
        per_iter = self.awaits - before
        self.awaits += per_iter * (iters - 1)

    # ----------------------------------------------------------------- par
    def gen_par(self, scope: _Scope, depth: int, nest: int) -> None:
        """A rejoining parallel whose branches own disjoint resources."""
        n = self.rng.randrange(2, self.config.max_par_branches + 1)
        n = min(n, len(scope.variables))
        mode = self.rng.choice(["par/and", "par/or"])
        var_slices = self.split(list(scope.variables), n)
        # every branch needs at least one variable to act on
        for i, vs in enumerate(var_slices):
            if not vs:
                donor = max(var_slices, key=len)
                vs.append(donor.pop())
        evt_slices = self.split(list(scope.events), n)
        void_slices = self.split(list(scope.consume_void), n)
        int_slices = self.split(list(scope.consume_int), n)
        # an emit chain pairs a consumer branch (last) with a guaranteed
        # emitter branch (first); the emitter needs an external event of
        # its own to ride on
        chain_evt: Optional[tuple[str, str]] = None
        if (self.rng.random() < self.config.weight("emit_chain") / 2.0
                and evt_slices[0]):
            pool = ([("void", e) for e in void_slices[n - 1]]
                    + [("int", e) for e in int_slices[n - 1]])
            if pool:
                chain_evt = self.rng.choice(pool)
        self.out(f"{mode} do", depth)
        for i in range(n):
            if i:
                self.out("with", depth)
            # a branch may emit the internal events its *siblings* consume
            sib_void = [e for j, s in enumerate(void_slices)
                        for e in s if j != i]
            sib_int = [e for j, s in enumerate(int_slices)
                       for e in s if j != i]
            branch = _Scope(var_slices[i], evt_slices[i],
                            void_slices[i], int_slices[i],
                            sib_void, sib_int, exclusive=False)
            if chain_evt is not None and i == n - 1:
                self.gen_consumer(branch, depth + 1, chain_evt)
            else:
                emit_first = chain_evt if i == 0 else None
                self.gen_branch(branch, depth + 1, nest + 1, emit_first)
        self.out("end", depth)

    def gen_branch(self, scope: _Scope, depth: int, nest: int,
                   emit_first: Optional[tuple[str, str]] = None) -> None:
        """A branch is a sequence of *reaction blocks*: an await of a
        branch-unique stimulus followed by zero-time actions.  Observable
        actions (print/emit) follow only event wakeups — timer wakeups
        may share a reaction with a sibling, so they only assign.
        ``emit_first`` names an internal event this branch must emit in
        its first block (the guaranteed feeder of a chain consumer)."""
        looped = emit_first is None and self.rng.random() < 0.25
        counter = None
        iters = 1
        before = self.awaits
        if looped:
            counter = self.fresh_var("k")
            lo, hi = self.config.loop_iters
            iters = self.rng.randrange(lo, hi + 1)
            self.out(f"int {counter} = 0;", depth)
            self.out("loop do", depth)
            depth += 1
        n_blocks = self.rng.randrange(1, 4)
        for b in range(n_blocks):
            force_event = b == 0 and emit_first is not None
            if scope.events and (force_event or self.rng.random() < 0.6):
                self.awaits += 1
                event = self.rng.choice(scope.events)
                if not force_event and self.rng.random() < 0.3:
                    var = self.rng.choice(scope.variables)
                    self.out(f"{var} = await {event};", depth)
                else:
                    self.out(f"await {event};", depth)
                observable = True
            else:
                self.awaits += 1
                self.out(f"await {self.rng.choice(TIMERS_MS)}ms;", depth)
                observable = False
            if force_event:
                kind, name = emit_first
                if kind == "void":
                    self.out(f"emit {name};", depth)
                else:
                    self.out(f"emit {name} = {self.rand_exp(scope)};",
                             depth)
            for _ in range(self.rng.randrange(0, 3)):
                self.action(scope, depth, observable=observable)
            if (nest < self.config.max_depth
                    and len(scope.variables) >= 2
                    and self.rng.random()
                    < self.config.weight("par") / 8.0):
                self.gen_par(scope, depth, nest)
        if looped:
            depth -= 1
            self.out(f"{counter} = {counter} + 1;", depth + 1)
            self.out(f"if {counter} >= {iters} then", depth + 1)
            self.out("break;", depth + 2)
            self.out("end", depth + 1)
            self.out("end", depth)
            per_iter = self.awaits - before
            self.awaits += per_iter * (iters - 1)

    def gen_prio_gadget(self, scope: _Scope, idx: int,
                        depth: int = 0) -> None:
        """A §4.1 join-order probe: two sibling trails wake on the same
        external event; one finishes its ``par/or`` directly, the other
        through a *nested* rejoin whose continuation emits.  Glitch-free
        join priorities run the inner continuation (``g<idx>b``) before
        the outer kill reaches it; a flat-priority backend may kill the
        inner branch first and lose the emit and the ``vb`` update.  The
        gadget events are dedicated, never-awaited internal voids, so
        only the portable signature (``==EMIT`` order) observes them and
        the temporal analysis still accepts the program."""
        event = self.rng.choice(EXT_EVENTS)
        va, vb = self.rng.sample(scope.variables, 2)
        self.awaits += 1
        self.out("par/or do", depth)
        self.out(f"await {event};", depth + 1)
        self.out(f"{va} = {va} + 1;", depth + 1)
        self.out(f"emit g{idx}a;", depth + 1)
        self.out("with", depth)
        self.out("par/or do", depth + 1)
        self.out(f"await {event};", depth + 2)
        self.out(f"{vb} = {vb} + 1;", depth + 2)
        self.out("with", depth + 1)
        self.out("await forever;", depth + 2)
        self.out("end", depth + 1)
        self.out(f"emit g{idx}b;", depth + 1)
        self.out("end", depth)

    def gen_consumer(self, scope: _Scope, depth: int,
                     chain_evt: tuple[str, str]) -> None:
        """An emit-chain consumer: awaits its own internal event once and
        escapes.  A single receipt is guaranteed — the consumer arms at
        the parallel's boot reaction, before the feeder's first external
        wakeup can possibly emit."""
        kind, event = chain_evt
        counter = self.fresh_var("c")
        self.out(f"int {counter} = 0;", depth)
        self.out("loop do", depth)
        if kind == "int":
            var = self.rng.choice(scope.variables)
            self.out(f"{var} = await {event};", depth + 1)
        else:
            self.out(f"await {event};", depth + 1)
        for _ in range(self.rng.randrange(1, 3)):
            self.action(scope, depth + 1, observable=True)
        self.out(f"{counter} = {counter} + 1;", depth + 1)
        self.out(f"if {counter} >= 1 then", depth + 1)
        self.out("break;", depth + 2)
        self.out("end", depth + 1)
        self.out("end", depth)

    # ------------------------------------------------------------ assembly
    def case(self) -> GenCase:
        cfg = self.config
        self.lines = [f"input int {', '.join(EXT_EVENTS)};"]
        voids = [f"i{i}" for i in range(cfg.n_void_internal)]
        ints = [f"x{i}" for i in range(cfg.n_int_internal)]
        if voids:
            self.lines.append(f"internal void {', '.join(voids)};")
        if ints:
            self.lines.append(f"internal int {', '.join(ints)};")
        gadgets = list(range(cfg.prio_gadgets))
        if gadgets:
            names = ", ".join(f"g{i}{suffix}"
                              for i in gadgets for suffix in "ab")
            self.lines.append(f"internal void {names};")
        variables = [f"v{i}" for i in range(cfg.n_vars)]
        inits = ", ".join(f"{v} = {self.rng.randrange(10)}"
                          for v in variables)
        self.lines.append(f"int {inits};")
        scope = _Scope(variables, list(EXT_EVENTS), voids, ints,
                       voids, ints, exclusive=True)
        lo, hi = cfg.top_stmts
        for _ in range(self.rng.randrange(lo, hi + 1)):
            if gadgets and self.rng.random() < 0.5:
                self.gen_prio_gadget(scope, gadgets.pop(0))
            if self.awaits >= cfg.await_budget:
                break
            self.stmt(scope, 0, 0)
        for idx in gadgets:  # any gadget the dice didn't place yet
            self.gen_prio_gadget(scope, idx)
        checksum = " + ".join(variables)
        self.lines.append(f"return {checksum};")
        src = "\n".join(self.lines)
        script = self.make_script()
        return GenCase(seed=self.seed, src=src, script=script,
                       profile=self.profile)

    def make_script(self) -> list[tuple]:
        """Enough rounds that every generated await is satisfiable: each
        round delivers every external event once and advances time past
        the longest timer."""
        rounds = self.awaits + 4
        script: list[tuple] = []
        for k in range(1, rounds + 1):
            for j, name in enumerate(EXT_EVENTS):
                script.append(("E", name, (k * 7 + j * 13) % 200))
            script.append(("T", k * ROUND_US))
        return script


def generate_case(seed: int, config: GenConfig = DIFF,
                  profile: str = "diff") -> GenCase:
    """One seeded fuzz case (deterministic in ``seed`` and ``config``)."""
    return ProgramGen(seed, config, profile).case()


# ---------------------------------------------------------------------------
# the relay family (used by the hypothesis property tests)
# ---------------------------------------------------------------------------

RELAY_EVENTS = ["A", "B", "C"]
RELAY_PERIODS = ["10ms", "7ms", "1s"]


def relay_program(n_trails: int, period: str,
                  steps: Optional[list[list[str]]] = None) -> str:
    """Deterministic-by-construction relay program: trail 0 is a
    timer-driven emitter of the ``relay`` internal event; the other
    trails each update their *own* variable on external events or on
    ``relay``.  ``relay`` is only ever armed in reactions the emitter
    cannot share (an event reaction, or a causal consequence of the emit
    itself), so the temporal analysis must accept every instance.

    ``steps[t]`` lists the stimuli of trail ``t+1`` (events or
    ``"relay"``); defaults to one external await each.
    """
    decls = [f"input int {', '.join(RELAY_EVENTS)};",
             "internal void relay;"]
    branches = []
    for t in range(n_trails):
        decls.append(f"int v{t} = 0;")
        lines = []
        if t == 0:
            lines.append(f"      await {period};")
            lines.append(f"      v{t} = v{t} + 1;")
            lines.append("      emit relay;")
        else:
            trail_steps = (steps[t - 1] if steps and t - 1 < len(steps)
                           else [RELAY_EVENTS[t % len(RELAY_EVENTS)]])
            for step in trail_steps:
                lines.append(f"      await {step};")
                lines.append(f"      v{t} = v{t} + 1;")
        branches.append("   loop do\n" + "\n".join(lines) + "\n   end")
    src = "\n".join(decls)
    if len(branches) == 1:
        src += "\n" + branches[0].replace("   loop", "loop")
    else:
        src += "\npar do\n" + "\nwith\n".join(branches) + "\nend"
    return src
