"""Script mutation for coverage-guided fuzzing.

The generator (:mod:`repro.fuzz.gen`) owns the *program* half of a fuzz
case; this module owns the *input* half.  A script is a list of
``("E", name, value)`` stimuli and ``("T", abs_us)`` time advances — a
flat, order-sensitive sequence, which is exactly the shape AFL-style
havoc mutation was made for.  :class:`ScriptMutator` applies a handful
of structural operators (value tweaks, event swaps, duplication, drops,
reorders, time jitter, splicing with a donor from the corpus, tail
extension) and then *normalises* the result so it stays a legal input:

* ``T`` times are clamped to be nondecreasing — the VM (correctly)
  refuses to run time backwards, and a crash-on-illegal-input would
  otherwise drown the oracles in false "vm-crash" verdicts;
* length is capped (``max_len``) so runaway duplication cannot make
  campaigns quadratic;
* a mutated script is never empty.

All randomness comes from the ``random.Random`` handed in, so campaigns
stay reproducible from their seed.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from .gen import EXT_EVENTS, ROUND_US

#: boundary values that historically shake out comparison and modulo
#: bugs (AFL's "interesting" constants, trimmed to the C-safe range the
#: generator's arithmetic guarantees)
INTERESTING = (0, 1, 2, 7, 13, 42, 99, 127, 199, 255)


def _times_nondecreasing(script: list[tuple]) -> list[tuple]:
    """Clamp ``T`` entries so absolute time never goes backwards."""
    out: list[tuple] = []
    clock = 0
    for item in script:
        if item[0] == "T":
            clock = max(clock, int(item[1]))
            out.append(("T", clock))
        else:
            out.append(item)
    return out


class ScriptMutator:
    """Seeded havoc mutator over event scripts (see module docstring)."""

    def __init__(self, rng: random.Random,
                 events: Sequence[str] = EXT_EVENTS,
                 round_us: int = ROUND_US, max_len: int = 400):
        self.rng = rng
        self.events = tuple(events)
        self.round_us = round_us
        self.max_len = max_len

    # ----------------------------------------------------------- creation
    def random_script(self, rounds: int = 8) -> list[tuple]:
        """A fresh random script: per round, a random burst of events
        then a time advance.  This is the *unguided* input distribution
        — both the random and the guided scheduler draw fresh inputs
        from here, so coverage comparisons are apples-to-apples."""
        script: list[tuple] = []
        clock = 0
        for _ in range(rounds):
            for _ in range(self.rng.randrange(1, 4)):
                script.append(("E", self.rng.choice(self.events),
                               self._value()))
            clock += self.rng.randrange(1, 3) * self.round_us
            script.append(("T", clock))
        return script

    def _value(self) -> int:
        if self.rng.random() < 0.5:
            return self.rng.choice(INTERESTING)
        return self.rng.randrange(0, 200)

    # ----------------------------------------------------------- mutation
    def mutate(self, script: Sequence[tuple],
               donor: Optional[Sequence[tuple]] = None) -> list[tuple]:
        """1–4 havoc operators applied to a copy of ``script``; the
        result is always normalised (legal, bounded, nonempty)."""
        out = list(script) or [("T", self.round_us)]
        for _ in range(self.rng.randrange(1, 5)):
            op = self.rng.randrange(8 if donor else 7)
            i = self.rng.randrange(len(out))
            if op == 0:        # tweak a value / nudge a time
                item = out[i]
                if item[0] == "E":
                    out[i] = ("E", item[1], self._value())
                else:
                    delta = self.rng.choice([-1, 1]) \
                        * self.rng.randrange(1, 3) * self.round_us
                    out[i] = ("T", max(0, item[1] + delta))
            elif op == 1:      # retarget an event
                item = out[i]
                if item[0] == "E":
                    out[i] = ("E", self.rng.choice(self.events), item[2])
            elif op == 2:      # duplicate an entry in place
                out.insert(i, out[i])
            elif op == 3:      # drop an entry
                if len(out) > 1:
                    del out[i]
            elif op == 4:      # swap adjacent entries (reorder stimuli)
                if i + 1 < len(out):
                    out[i], out[i + 1] = out[i + 1], out[i]
            elif op == 5:      # inject a fresh stimulus
                out.insert(i, ("E", self.rng.choice(self.events),
                               self._value()))
            elif op == 6:      # append a tail round (push the run longer)
                clock = max([it[1] for it in out if it[0] == "T"],
                            default=0)
                out.append(("E", self.rng.choice(self.events),
                            self._value()))
                out.append(("T", clock + self.round_us))
            elif op == 7 and donor:   # splice: our head + donor's tail
                cut = self.rng.randrange(1, len(out) + 1)
                dcut = self.rng.randrange(len(donor))
                out = out[:cut] + list(donor)[dcut:]
        return self.normalize(out)

    def normalize(self, script: list[tuple]) -> list[tuple]:
        out = _times_nondecreasing(script[:self.max_len])
        return out or [("T", self.round_us)]


__all__ = ["INTERESTING", "ScriptMutator"]
