"""The fuzz campaign driver behind ``python -m repro fuzz``.

Generates seeded cases, stacks the oracles of
:mod:`repro.fuzz.oracles` on each, optionally shrinks every failure to
a minimal reproducer, and reports through the observability JSONL
exporter (one record per case/failure plus a summary — the same
format as ``repro run --trace-jsonl``, see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs import JsonlExporter
from .gen import DIFF, GenCase, GenConfig, generate_case, script_text
from .oracles import FAULTS, OracleFailure, check_case, has_gcc, run_c, \
    run_vm
from .shrink import ShrinkResult, shrink


@dataclass
class FuzzStats:
    cases: int = 0
    accepted: int = 0
    refused: int = 0
    giveup: int = 0
    c_diffed: int = 0
    failures: list[OracleFailure] = field(default_factory=list)
    shrunk: list[ShrinkResult] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.failures


class FuzzRunner:
    """One fuzz campaign: ``FuzzRunner(seed=0).run(n=200)``."""

    def __init__(self, seed: int = 0, config: GenConfig = DIFF,
                 use_c: bool = True, fault: Optional[str] = None,
                 do_shrink: bool = False, report: Optional[str] = None,
                 profile: str = "diff",
                 log: Callable[[str], None] = lambda msg: print(
                     msg, file=sys.stderr)):
        self.seed = seed
        self.config = config
        self.profile = profile
        self.use_c = use_c and has_gcc()
        self.mutate = FAULTS[fault] if fault else None
        self.do_shrink = do_shrink
        self.report_path = report
        self.log = log
        self.stats = FuzzStats()
        self.exporter = JsonlExporter()

    # ------------------------------------------------------------- records
    def _record(self, ev: str, **fields) -> None:
        rec = {"ev": ev, "seq": len(self.exporter.records)}
        rec.update(fields)
        self.exporter.records.append(rec)

    # ------------------------------------------------------------ campaign
    def run(self, n: Optional[int] = None,
            minutes: Optional[float] = None) -> FuzzStats:
        """Fuzz until ``n`` cases are done or ``minutes`` have elapsed
        (whichever comes first; either may be None for "no cap" — at
        least one must be set)."""
        if n is None and minutes is None:
            raise ValueError("need a case count or a time budget")
        deadline = (time.monotonic() + minutes * 60
                    if minutes is not None else None)
        if not self.use_c:
            self._record("fuzz_config", note="C oracle disabled "
                         "(gcc unavailable or --no-c)")
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
            seed = self.seed
            while True:
                if n is not None and self.stats.cases >= n:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                self._one_case(generate_case(seed, self.config,
                                             self.profile), tmp)
                seed += 1
        self._record("fuzz_summary", cases=self.stats.cases,
                     accepted=self.stats.accepted,
                     refused=self.stats.refused,
                     giveup=self.stats.giveup,
                     c_diffed=self.stats.c_diffed,
                     failures=len(self.stats.failures),
                     gcc=self.use_c)
        if self.report_path:
            self.exporter.write(self.report_path)
            self.log(f"wrote {self.report_path}: "
                     f"{len(self.exporter.records)} records")
        self.log(self.summary())
        return self.stats

    def _one_case(self, case: GenCase, tmp: str) -> None:
        self.stats.cases += 1
        verdict, failures = check_case(case, workdir=tmp,
                                       use_c=self.use_c,
                                       mutate=self.mutate)
        if verdict == "accept":
            self.stats.accepted += 1
            if self.use_c:
                self.stats.c_diffed += 1
        elif verdict == "refuse":
            self.stats.refused += 1
        elif verdict == "giveup":
            self.stats.giveup += 1
        self._record("fuzz_case", seed=case.seed, verdict=verdict,
                     src_lines=case.src_lines(),
                     script_len=len(case.script),
                     ok=not failures)
        for failure in failures:
            self.stats.failures.append(failure)
            self.log(f"FAIL {failure.summary()}")
            shrunk = None
            if self.do_shrink:
                shrunk = self._shrink_failure(failure)
            self._record("fuzz_failure", seed=failure.seed,
                         oracle=failure.oracle, details=failure.details,
                         src=failure.src,
                         script=script_text(failure.script),
                         shrunk_src=shrunk.src if shrunk else None,
                         shrunk_script=(script_text(shrunk.script)
                                        if shrunk else None))

    # ------------------------------------------------------------ shrinking
    def _shrink_failure(self, failure: OracleFailure) -> ShrinkResult:
        """Re-runs the failing oracle as the shrink predicate."""
        oracle = failure.oracle

        def predicate(src: str, script: list) -> bool:
            case = GenCase(seed=failure.seed, src=src, script=list(script))
            with tempfile.TemporaryDirectory(prefix="repro-shrink-") as t:
                _verdict, fails = check_case(case, workdir=t,
                                             use_c=self.use_c,
                                             mutate=self.mutate)
            return any(f.oracle == oracle for f in fails)

        result = shrink(failure.src, failure.script, predicate)
        self.stats.shrunk.append(result)
        self.log(f"shrunk seed={failure.seed}: "
                 f"{len(failure.src.splitlines())} -> "
                 f"{result.src_lines()} lines, "
                 f"{len(failure.script)} -> {len(result.script)} events "
                 f"({result.tests} predicate calls)")
        self.log("--- reproducer ---\n" + result.src)
        self.log("--- script ---\n" + script_text(result.script))
        return result

    # -------------------------------------------------------------- report
    def summary(self) -> str:
        s = self.stats
        backend = "VM+C" if self.use_c else "VM only"
        line = (f"fuzz: {s.cases} cases ({backend}) — "
                f"{s.accepted} accepted, {s.refused} refused, "
                f"{s.giveup} gave up, {s.c_diffed} C-diffed, "
                f"{len(s.failures)} failure(s)")
        return line


__all__ = ["FuzzRunner", "FuzzStats", "run_vm", "run_c"]
