"""The fuzz campaign driver behind ``python -m repro fuzz``.

Generates seeded cases, stacks the oracles of
:mod:`repro.fuzz.oracles` on each, optionally shrinks every failure to
a minimal reproducer, and reports through the observability JSONL
exporter (one record per case/failure plus a summary — the same
format as ``repro run --trace-jsonl``, see docs/OBSERVABILITY.md).

Two seed-scheduling modes:

* **random** (default) — every case is a fresh draw: a generated
  (program, script) pair, or in *target* mode a fresh random script
  against a fixed program.
* **coverage-guided** (``guided=True``) — every case is additionally run
  under the hook-bus coverage subscribers
  (:class:`repro.obs.CoverageMap`, and :class:`repro.obs.DfaEdgeCoverage`
  in target mode).  Cases that light coverage bits nobody has lit before
  enter a bounded corpus; subsequent cases are drawn preferentially by
  mutating corpus scripts (:class:`repro.fuzz.mutate.ScriptMutator`),
  energy-weighted toward entries that found a lot and have been
  exploited little — the AFL loop, over event scripts.  Every coverage
  gain is recorded as a ``fuzz_cov`` JSONL record, so a campaign report
  carries its own coverage-growth curve.
"""

from __future__ import annotations

import random
import sys
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..dfa import build_dfa
from ..lang import parse
from ..obs import JsonlExporter, collect_coverage
from ..runtime import Program
from ..sema import bind
from .gen import DIFF, GenCase, GenConfig, generate_case, script_text
from .mutate import ScriptMutator
from .oracles import FAULTS, OracleFailure, check_case, has_gcc, run_c, \
    run_semantics, run_vm
from .shrink import ShrinkResult, shrink


@dataclass
class FuzzStats:
    cases: int = 0
    accepted: int = 0
    refused: int = 0
    giveup: int = 0
    c_diffed: int = 0
    spec_diffed: int = 0          # cases also run on the reference semantics
    trivial: int = 0              # cases rejected: no reaction beyond boot
    mutated: int = 0              # cases drawn by corpus mutation
    coverage_total: int = 0       # unique coverage ids lit so far
    corpus_size: int = 0
    failures: list[OracleFailure] = field(default_factory=list)
    shrunk: list[ShrinkResult] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.failures


@dataclass
class _CorpusEntry:
    case: GenCase
    new: int        # coverage ids this entry lit first
    hits: int = 0   # times it has been picked for mutation

    @property
    def energy(self) -> float:
        return self.new / (1.0 + self.hits)


class FuzzRunner:
    """One fuzz campaign: ``FuzzRunner(seed=0).run(n=200)``.

    ``target`` fixes the program under test to the given source text
    (scripts become the input space); ``guided`` turns on coverage-guided
    seed scheduling (see module docstring).  Coverage is measured
    whenever either is set, so guided and random campaigns over the same
    target are directly comparable via ``stats.coverage_total``.
    """

    def __init__(self, seed: int = 0, config: GenConfig = DIFF,
                 use_c: bool = True, fault: Optional[str] = None,
                 do_shrink: bool = False, report: Optional[str] = None,
                 profile: str = "diff",
                 guided: bool = False, target: Optional[str] = None,
                 corpus_max: int = 64, mutate_ratio: float = 0.75,
                 artifact_dir: Optional[str] = None,
                 use_semantics: bool = False,
                 max_trivial_retries: int = 3,
                 log: Callable[[str], None] = lambda msg: print(
                     msg, file=sys.stderr)):
        self.seed = seed
        self.config = config
        self.profile = profile
        self.use_c = use_c and has_gcc()
        self.use_semantics = use_semantics
        self.max_trivial_retries = max_trivial_retries
        self.mutate = FAULTS[fault] if fault else None
        self.do_shrink = do_shrink
        self.report_path = report
        self.artifact_dir = artifact_dir
        self.log = log
        self.stats = FuzzStats()
        self.exporter = JsonlExporter()
        # --- coverage-guided scheduling state ---
        self.guided = guided
        self.target = target
        self.corpus_max = corpus_max
        self.mutate_ratio = mutate_ratio
        self.rng = random.Random((seed << 1) ^ 0x5EED)
        self.mutator = ScriptMutator(self.rng)
        self.coverage: set[int] = set()
        self.corpus: list[_CorpusEntry] = []
        self.target_dfa = None
        if target is not None:
            bound = bind(parse(target))
            events = tuple(e.name for e in bound.input_events()) \
                or self.mutator.events
            self.mutator = ScriptMutator(self.rng, events=events)
            try:
                self.target_dfa = build_dfa(bound)
            except Exception:
                self.target_dfa = None   # stmt/edge coverage still works

    # ------------------------------------------------------------- records
    def _record(self, ev: str, **fields) -> None:
        rec = {"ev": ev, "seq": len(self.exporter.records)}
        rec.update(fields)
        self.exporter.records.append(rec)

    # ------------------------------------------------------------ campaign
    def run(self, n: Optional[int] = None,
            minutes: Optional[float] = None) -> FuzzStats:
        """Fuzz until ``n`` cases are done or ``minutes`` have elapsed
        (whichever comes first; either may be None for "no cap" — at
        least one must be set)."""
        if n is None and minutes is None:
            raise ValueError("need a case count or a time budget")
        deadline = (time.monotonic() + minutes * 60
                    if minutes is not None else None)
        if not self.use_c:
            self._record("fuzz_config", note="C oracle disabled "
                         "(gcc unavailable or --no-c)")
        if self.guided or self.target is not None:
            self._record("fuzz_config", guided=self.guided,
                         target=self.target is not None,
                         dfa_edges=(len(self.target_dfa.edges)
                                    if self.target_dfa else 0))
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
            seed = self.seed
            while True:
                if n is not None and self.stats.cases >= n:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                self._one_case(self._next_case(seed), tmp)
                seed += 1
        self._record("fuzz_summary", cases=self.stats.cases,
                     accepted=self.stats.accepted,
                     refused=self.stats.refused,
                     giveup=self.stats.giveup,
                     c_diffed=self.stats.c_diffed,
                     spec_diffed=self.stats.spec_diffed,
                     trivial=self.stats.trivial,
                     failures=len(self.stats.failures),
                     gcc=self.use_c,
                     semantics=self.use_semantics,
                     guided=self.guided,
                     mutated=self.stats.mutated,
                     coverage=self.stats.coverage_total,
                     corpus=self.stats.corpus_size)
        if self.report_path:
            self.exporter.write(self.report_path)
            self.log(f"wrote {self.report_path}: "
                     f"{len(self.exporter.records)} records")
        self.log(self.summary())
        return self.stats

    # ------------------------------------------------------ seed scheduling
    def _next_case(self, seed: int) -> GenCase:
        """The seed scheduler: corpus mutation when guided (and the dice
        say exploit), a fresh draw otherwise."""
        if (self.guided and self.corpus
                and self.rng.random() < self.mutate_ratio):
            entry = self._pick_corpus()
            entry.hits += 1
            donor = self.rng.choice(self.corpus).case.script \
                if len(self.corpus) > 1 else None
            script = self.mutator.mutate(entry.case.script, donor=donor)
            self.stats.mutated += 1
            return GenCase(seed=seed, src=entry.case.src, script=script,
                           profile="mutant")
        if self.target is not None:
            script = self.mutator.random_script(
                rounds=self.rng.randrange(4, 12))
            return GenCase(seed=seed, src=self.target, script=script,
                           profile="target")
        return generate_case(seed, self.config, self.profile)

    def _pick_corpus(self) -> _CorpusEntry:
        """Energy-weighted corpus pick: prefer entries that found much
        new coverage and have been mutated little."""
        weights = [entry.energy + 0.01 for entry in self.corpus]
        return self.rng.choices(self.corpus, weights=weights)[0]

    def _coverage_of(self, case: GenCase) -> Optional[set[int]]:
        """One extra instrumented VM run; feature ids are namespaced per
        program so generated-program campaigns don't conflate line 7 of
        two different programs."""
        context = "" if self.target is not None \
            else str(zlib.crc32(case.src.encode()))
        return collect_coverage(Program, case.src, case.script,
                                dfa=self.target_dfa, context=context)

    def _observe_coverage(self, case: GenCase) -> None:
        ids = self._coverage_of(case)
        if ids is None:
            return
        new = ids - self.coverage
        if not new:
            return
        self.coverage |= new
        self.stats.coverage_total = len(self.coverage)
        self._record("fuzz_cov", case=self.stats.cases,
                     new=len(new), total=len(self.coverage),
                     corpus=len(self.corpus))
        if self.guided:
            self.corpus.append(_CorpusEntry(case=case, new=len(new)))
            if len(self.corpus) > self.corpus_max:
                self.corpus.remove(
                    min(self.corpus, key=lambda entry: entry.energy))
            self.stats.corpus_size = len(self.corpus)

    # --------------------------------------------------------------- cases
    def _one_case(self, case: GenCase, tmp: str, retry: int = 0) -> None:
        self.stats.cases += 1
        coverage: dict = {}
        verdict, failures = check_case(case, workdir=tmp,
                                       use_c=self.use_c,
                                       mutate=self.mutate,
                                       use_semantics=self.use_semantics,
                                       stats_out=coverage)
        if verdict == "accept":
            self.stats.accepted += 1
            if self.use_c:
                self.stats.c_diffed += 1
        elif verdict == "refuse":
            self.stats.refused += 1
        elif verdict == "giveup":
            self.stats.giveup += 1
        if self.use_semantics and verdict != "ill-formed":
            self.stats.spec_diffed += 1
        if self.guided or self.target is not None:
            self._observe_coverage(case)
        # non-trivial coverage: a case whose whole life is the boot
        # reaction exercises no oracle — every differential comparison
        # passes vacuously.  Reject it and re-roll a replacement.
        trivial = (not failures
                   and coverage.get("nonboot_reactions") == 0)
        self._record("fuzz_case", seed=case.seed, verdict=verdict,
                     src_lines=case.src_lines(),
                     script_len=len(case.script),
                     reactions=coverage.get("reactions"),
                     trivial=trivial,
                     ok=not failures)
        if trivial:
            self.stats.trivial += 1
            if retry < self.max_trivial_retries:
                self._one_case(self._reroll(case, retry + 1), tmp,
                               retry + 1)
            return
        for failure in failures:
            self.stats.failures.append(failure)
            self.log(f"FAIL {failure.summary()}")
            shrunk = None
            if self.do_shrink:
                shrunk = self._shrink_failure(failure)
            self._record("fuzz_failure", seed=failure.seed,
                         oracle=failure.oracle, details=failure.details,
                         src=failure.src,
                         script=script_text(failure.script),
                         shrunk_src=shrunk.src if shrunk else None,
                         shrunk_script=(script_text(shrunk.script)
                                        if shrunk else None))
            if self.artifact_dir:
                self._write_artifacts(failure, shrunk)

    def _reroll(self, case: GenCase, retry: int) -> GenCase:
        """A replacement draw for a trivial case.  Fixed-program modes
        get a fresh random script; generated modes a re-salted seed."""
        if self.target is not None or case.profile in ("target", "mutant"):
            script = self.mutator.random_script(
                rounds=self.rng.randrange(4, 12))
            return GenCase(seed=case.seed, src=case.src, script=script,
                           profile=case.profile)
        return generate_case(case.seed * 1_000_003 + retry, self.config,
                             self.profile)

    # ------------------------------------------------------------ shrinking
    def _shrink_failure(self, failure: OracleFailure) -> ShrinkResult:
        """Re-runs the failing oracle as the shrink predicate."""
        oracle = failure.oracle

        def predicate(src: str, script: list) -> bool:
            case = GenCase(seed=failure.seed, src=src, script=list(script))
            with tempfile.TemporaryDirectory(prefix="repro-shrink-") as t:
                _verdict, fails = check_case(
                    case, workdir=t, use_c=self.use_c,
                    mutate=self.mutate,
                    use_semantics=self.use_semantics)
            return any(f.oracle == oracle for f in fails)

        result = shrink(failure.src, failure.script, predicate)
        self.stats.shrunk.append(result)
        self.log(f"shrunk seed={failure.seed}: "
                 f"{len(failure.src.splitlines())} -> "
                 f"{result.src_lines()} lines, "
                 f"{len(failure.script)} -> {len(result.script)} events "
                 f"({result.tests} predicate calls)")
        self.log("--- reproducer ---\n" + result.src)
        self.log("--- script ---\n" + script_text(result.script))
        return result

    # ------------------------------------------------------------ artifacts
    def _write_artifacts(self, failure: OracleFailure,
                         shrunk: Optional[ShrinkResult]) -> None:
        """Persist one failure for CI upload: the (shrunk, if available)
        reproducer source + script, and a Perfetto trace with causal
        flow arrows from an instrumented VM replay."""
        import os

        from ..obs import ChromeTraceExporter

        src = shrunk.src if shrunk else failure.src
        script = list(shrunk.script) if shrunk else list(failure.script)
        os.makedirs(self.artifact_dir, exist_ok=True)
        stem = os.path.join(self.artifact_dir,
                            f"repro_{failure.seed}_{failure.oracle}")
        with open(stem + ".ceu", "w") as fh:
            fh.write(src if src.endswith("\n") else src + "\n")
        with open(stem + ".script", "w") as fh:
            fh.write(script_text(script))
        try:
            program = Program(src)
            chrome = program.observe(
                ChromeTraceExporter(flows_from=program.hooks))
            try:
                program.start()
                for item in script:
                    if program.done:
                        break
                    if item[0] == "E":
                        program.send(item[1], item[2])
                    else:
                        program.at(item[1])
            except Exception:
                pass  # a crashing replay still yields a useful trace
            chrome.write(stem + ".trace.json")
        except Exception as err:
            with open(stem + ".trace.err", "w") as fh:
                fh.write(f"trace replay unavailable: {err}\n")
        self.log(f"artifacts: {stem}.{{ceu,script,trace.json}}")

    # -------------------------------------------------------------- report
    def summary(self) -> str:
        s = self.stats
        backend = "VM+C" if self.use_c else "VM"
        if self.use_semantics:
            backend += "+spec"
        elif not self.use_c:
            backend = "VM only"
        line = (f"fuzz: {s.cases} cases ({backend}) — "
                f"{s.accepted} accepted, {s.refused} refused, "
                f"{s.giveup} gave up, {s.c_diffed} C-diffed, "
                f"{len(s.failures)} failure(s)")
        if self.use_semantics:
            line += f"; {s.spec_diffed} spec-diffed"
        if s.trivial:
            line += f"; {s.trivial} trivial rejected"
        if self.guided or self.target is not None:
            line += (f"; coverage {s.coverage_total} ids, "
                     f"corpus {s.corpus_size}, {s.mutated} mutants")
        return line


__all__ = ["FuzzRunner", "FuzzStats", "run_vm", "run_c", "run_semantics"]
