"""Conformance fuzzing: seeded program generation, differential oracles
(VM ↔ C ↔ spec ↔ replay), and a delta-debugging shrinker
(docs/FUZZING.md).

The subsystem turns the repo's three executable semantics — the
reference VM, the §4.4 C backend, and the executable reference
semantics (:mod:`repro.semantics`) — into each other's oracles, the way
Esterel-family compilers are validated when a verified chain is out of
reach.  Entry points:

* :func:`repro.fuzz.gen.generate_case` — one seeded (program, script);
* :class:`repro.fuzz.runner.FuzzRunner` — drive N cases through the
  oracle stack, shrink failures, emit a JSONL report;
* ``python -m repro fuzz`` — the CLI front end.
"""

from .gen import (CORPUS_PROFILES, DIFF, PRIO, PROFILES, GenCase,
                  GenConfig, ProgramGen, generate_case, parse_script_text,
                  relay_program, script_text)
from .mutate import INTERESTING, ScriptMutator
from .oracles import (FAULTS, OracleFailure, RunResult, bounds_violations,
                      canon_psig, canon_sig, check_case, has_gcc, run_c,
                      run_semantics, run_vm, three_way_attribution)
from .runner import FuzzRunner, FuzzStats
from .shrink import (ShrinkResult, causal_cone_script, shrink,
                     shrink_script)

__all__ = [
    "CORPUS_PROFILES", "DIFF", "FAULTS", "FuzzRunner", "FuzzStats",
    "GenCase", "GenConfig", "INTERESTING", "OracleFailure", "PRIO",
    "PROFILES", "ProgramGen", "RunResult", "ScriptMutator",
    "ShrinkResult", "bounds_violations", "canon_psig", "canon_sig",
    "causal_cone_script", "check_case", "generate_case", "has_gcc",
    "parse_script_text", "relay_program", "run_c", "run_semantics",
    "run_vm", "script_text", "shrink", "shrink_script",
    "three_way_attribution",
]
