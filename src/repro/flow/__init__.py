"""Flow graph ("NFA") construction and rendering (§4.1)."""

from .builder import build_flow
from .graph import FlowGraph, FlowNode

__all__ = ["build_flow", "FlowGraph", "FlowNode"]
