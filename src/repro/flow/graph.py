"""Flow graph ("NFA") of a Céu program — §4.1, Figure `nfa`.

The temporal-analysis phase first converts the AST into a graph that
represents the execution flow.  Nodes are statements; fork nodes spawn the
branches of parallel compositions; join nodes represent the termination of
``par/or``/``par/and`` compositions and of loops.  Every node carries a
*priority*: 0 (highest) by default, while join/termination nodes take the
nesting depth complement — **the outer the construct, the lower the
priority** — the glitch-avoidance ordering the scheduler enforces at run
time (:mod:`repro.runtime.scheduler`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional


@dataclass(eq=False)
class FlowNode:
    id: int
    label: str
    kind: str                  # "stmt" | "await" | "fork" | "join" | "end"
    priority: int = 0          # 0 = highest; larger runs later
    ast_nid: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.id}] {self.label} (prio {self.priority})"


@dataclass
class FlowGraph:
    nodes: list[FlowNode] = field(default_factory=list)
    edges: list[tuple[int, int, str]] = field(default_factory=list)
    entry: Optional[int] = None
    _seq: itertools.count = field(default_factory=lambda: itertools.count(1))

    def add_node(self, label: str, kind: str, priority: int = 0,
                 ast_nid: Optional[int] = None) -> FlowNode:
        node = FlowNode(next(self._seq), label, kind, priority, ast_nid)
        self.nodes.append(node)
        return node

    def add_edge(self, src: FlowNode, dst: FlowNode, label: str = "") -> None:
        self.edges.append((src.id, dst.id, label))

    # ------------------------------------------------------------- queries
    def node(self, node_id: int) -> FlowNode:
        for n in self.nodes:
            if n.id == node_id:
                return n
        raise KeyError(node_id)

    def successors(self, node_id: int) -> list[int]:
        return [dst for src, dst, _ in self.edges if src == node_id]

    def await_nodes(self) -> list[FlowNode]:
        return [n for n in self.nodes if n.kind == "await"]

    def join_nodes(self) -> list[FlowNode]:
        return [n for n in self.nodes if n.kind == "join"]

    def max_priority(self) -> int:
        return max((n.priority for n in self.nodes), default=0)

    # ---------------------------------------------------------------- dot
    def to_dot(self, title: str = "flow") -> str:
        """Graphviz rendering, matching the paper's figure style: awaits
        as ellipses, joins annotated with their priority."""
        lines = [f"digraph {title} {{", "  rankdir=TB;",
                 '  node [fontname="Helvetica", fontsize=10];']
        for n in self.nodes:
            shape = {"await": "ellipse", "fork": "triangle",
                     "join": "invtriangle", "end": "doublecircle",
                     "stmt": "box"}[n.kind]
            label = n.label.replace('"', r'\"')
            if n.kind == "join" and n.priority:
                label += f"\\nprio={n.priority}"
            lines.append(f'  n{n.id} [label="{label}", shape={shape}];')
        for src, dst, label in self.edges:
            attr = f' [label="{label}"]' if label else ""
            lines.append(f"  n{src} -> n{dst}{attr};")
        lines.append("}")
        return "\n".join(lines)
