"""AST → flow graph conversion (§4.1).

The graph is a faithful rendering of control flow for *visualisation and
reporting* (the paper's fig. `nfa`); the temporal analysis itself
(:mod:`repro.dfa`) abstract-interprets the AST directly, so the two stages
cannot drift apart.

Priorities: join nodes of parallel compositions and loop-termination nodes
receive ``max_depth - depth + 1`` so that *outer* constructs get *lower*
priority (larger number = runs later), exactly the scheme of the paper's
figure where the outermost join carries the lowest priority.
"""

from __future__ import annotations

from ..lang import ast
from ..lang.pretty import pretty as _pretty
from ..sema.binder import BoundProgram
from .graph import FlowGraph, FlowNode


def build_flow(bound: BoundProgram) -> FlowGraph:
    return _Builder(bound).build()


def _stmt_label(s: ast.Stmt) -> str:
    text = _pretty(s).strip().rstrip(";")
    first = text.splitlines()[0]
    if len(first) > 28:
        first = first[:25] + "..."
    return first


class _Builder:
    def __init__(self, bound: BoundProgram):
        self.bound = bound
        self.graph = FlowGraph()
        self._max_depth = self._measure_depth(bound.program.body, 0)
        #: open loop contexts: loop node → (head FlowNode, escape join)
        self._loops: dict[int, tuple[FlowNode, FlowNode]] = {}

    def _measure_depth(self, node: ast.Node, d: int) -> int:
        best = d
        nested = d + 1 if isinstance(node, (ast.ParStmt, ast.Loop)) else d
        for child in node.children():
            best = max(best, self._measure_depth(child, nested))
        return best

    def _join_priority(self, depth: int) -> int:
        # outer (small depth) → lower priority (larger number)
        return self._max_depth - depth + 1

    # -------------------------------------------------------------- build
    def build(self) -> FlowGraph:
        entry = self.graph.add_node("boot", "stmt")
        self.graph.entry = entry.id
        exits = self._block(self.bound.program.body, entry, depth=0)
        end = self.graph.add_node("end", "end")
        for node in exits:
            self.graph.add_edge(node, end)
        return self.graph

    def _block(self, block: ast.Block, pred: FlowNode,
               depth: int) -> list[FlowNode]:
        """Wire a block after ``pred``; returns the nodes that fall out."""
        frontier = [pred]
        for stmt in block.stmts:
            next_frontier: list[FlowNode] = []
            entries, exits = self._stmt(stmt, depth)
            if entries:
                for node in frontier:
                    for e in entries:
                        self.graph.add_edge(node, e)
                next_frontier = exits
                frontier = next_frontier
            # statements with no flow effect keep the frontier
            if not frontier:
                break  # unreachable code after non-falling statement
        return frontier

    def _stmt(self, s: ast.Stmt,
              depth: int) -> tuple[list[FlowNode], list[FlowNode]]:
        g = self.graph
        if isinstance(s, (ast.Nothing, ast.DeclEvent, ast.PureDecl,
                          ast.DeterministicDecl, ast.CBlockStmt)):
            return [], []
        if isinstance(s, (ast.AwaitExt, ast.AwaitInt, ast.AwaitTime,
                          ast.AwaitExp, ast.AwaitForever)):
            node = g.add_node(_stmt_label(s), "await", ast_nid=s.nid)
            if isinstance(s, ast.AwaitForever):
                return [node], []
            return [node], [node]
        if isinstance(s, ast.If):
            cond = g.add_node(f"if {_stmt_label(s)[3:]}", "stmt",
                              ast_nid=s.nid)
            then_exits = self._block(s.then, cond, depth)
            if s.orelse is not None:
                else_exits = self._block(s.orelse, cond, depth)
            else:
                else_exits = [cond]
            return [cond], then_exits + else_exits
        if isinstance(s, ast.Loop):
            head = g.add_node("loop", "stmt", ast_nid=s.nid)
            escape = g.add_node("loop-end", "join",
                                priority=self._join_priority(depth),
                                ast_nid=s.nid)
            self._loops[s.nid] = (head, escape)
            body_exits = self._block(s.body, head, depth + 1)
            for node in body_exits:
                g.add_edge(node, head, "iterate")
            del self._loops[s.nid]
            return [head], [escape]
        if isinstance(s, ast.Break):
            node = g.add_node("break", "stmt", ast_nid=s.nid)
            target = self.bound.break_target[s.nid]
            _, escape = self._loops[target.nid]
            g.add_edge(node, escape)
            return [node], []
        if isinstance(s, ast.Return):
            node = g.add_node(_stmt_label(s), "stmt", ast_nid=s.nid)
            return [node], []
        if isinstance(s, ast.ParStmt):
            fork = g.add_node(s.keyword, "fork", ast_nid=s.nid)
            join: FlowNode | None = None
            if s.mode in ("or", "and") or s.nid in \
                    self.bound.value_boundaries:
                join = g.add_node(f"{s.keyword}-join", "join",
                                  priority=self._join_priority(depth),
                                  ast_nid=s.nid)
            for block in s.blocks:
                exits = self._block(block, fork, depth + 1)
                if join is not None:
                    for node in exits:
                        g.add_edge(node, join, "terminate")
            return [fork], [join] if join is not None else []
        if isinstance(s, (ast.DeclVar, ast.Assign)):
            node = g.add_node(_stmt_label(s), "stmt", ast_nid=s.nid)
            inner = _setexp_of(s)
            if inner is not None and not isinstance(inner, ast.Exp):
                entries, exits = self._stmt(inner, depth)
                for e in entries:
                    g.add_edge(node, e)
                return [node], exits
            return [node], [node]
        if isinstance(s, ast.DoBlock):
            entry = g.add_node("do", "stmt", ast_nid=s.nid)
            exits = self._block(s.body, entry, depth)
            return [entry], exits
        if isinstance(s, ast.AsyncBlock):
            node = g.add_node("async", "await", ast_nid=s.nid)
            return [node], [node]
        # emits, C calls, plain calls
        node = g.add_node(_stmt_label(s), "stmt", ast_nid=s.nid)
        return [node], [node]


def _setexp_of(s: ast.Stmt):
    if isinstance(s, ast.Assign):
        return s.value
    if isinstance(s, ast.DeclVar):
        for d in s.decls:
            if d.init is not None and not isinstance(d.init, ast.Exp):
                return d.init
    return None
