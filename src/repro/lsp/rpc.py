"""JSON-RPC 2.0 with LSP base-protocol framing.

Messages are UTF-8 JSON bodies preceded by RFC-822-style headers, of
which ``Content-Length`` is mandatory::

    Content-Length: 52\r\n
    \r\n
    {"jsonrpc":"2.0","id":1,"method":"initialize",...}

The stream works over any pair of binary file objects, so tests drive a
server in-process through ``io.BytesIO`` without spawning a subprocess.
"""

from __future__ import annotations

import json
from typing import BinaryIO, Optional


class ProtocolError(Exception):
    """Malformed framing — unrecoverable; the server exits."""


class JsonRpcStream:
    """Reads and writes framed JSON-RPC messages over binary streams."""

    def __init__(self, reader: BinaryIO, writer: BinaryIO) -> None:
        self.reader = reader
        self.writer = writer

    def read(self) -> Optional[dict]:
        """The next message, or ``None`` on a clean EOF."""
        length: Optional[int] = None
        while True:
            line = self.reader.readline()
            if not line:
                if length is None:
                    return None
                raise ProtocolError("EOF inside message headers")
            line = line.rstrip(b"\r\n")
            if not line:
                break              # blank line terminates the headers
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise ProtocolError(f"bad Content-Length: {value!r}")
        if length is None:
            raise ProtocolError("missing Content-Length header")
        body = self.reader.read(length)
        if len(body) != length:
            raise ProtocolError("EOF inside message body")
        try:
            message = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ProtocolError(f"bad message body: {err}")
        if not isinstance(message, dict):
            raise ProtocolError("message body is not an object")
        return message

    def write(self, message: dict) -> None:
        body = json.dumps(message, separators=(",", ":"),
                          sort_keys=False).encode("utf-8")
        self.writer.write(f"Content-Length: {len(body)}\r\n\r\n"
                          .encode("ascii"))
        self.writer.write(body)
        self.writer.flush()

    # ------------------------------------------------------- conveniences
    def respond(self, req_id, result) -> None:
        self.write({"jsonrpc": "2.0", "id": req_id, "result": result})

    def error(self, req_id, code: int, message: str) -> None:
        self.write({"jsonrpc": "2.0", "id": req_id,
                    "error": {"code": code, "message": message}})

    def notify(self, method: str, params: dict) -> None:
        self.write({"jsonrpc": "2.0", "method": method, "params": params})


#: JSON-RPC error codes the server uses
PARSE_ERROR = -32700
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
SERVER_NOT_INITIALIZED = -32002
