"""The LSP dispatcher: one incremental analyzer per open document.

Supported requests/notifications:

=================================  ====================================
``initialize`` / ``initialized``   capability handshake
``shutdown`` / ``exit``            orderly teardown
``textDocument/didOpen``           analyze + publish diagnostics
``textDocument/didChange``         incremental sync, re-publish
``textDocument/didClose``          drop state, clear diagnostics
``textDocument/hover``             static resource bounds of the trail
                                   frame under the cursor (§4.2 figures)
``textDocument/definition``        declaration of the variable / event
                                   under the cursor (binder symbols)
=================================  ====================================

Diagnostics carry the same ``CEU-*`` codes, messages, severities and
related locations as ``repro lint`` — the analyzer underneath is
byte-identical to the batch pipeline.
"""

from __future__ import annotations

import sys
from typing import Optional

from ..analysis import IncrementalAnalyzer, Report
from ..analysis.diagnostics import Diagnostic
from ..lang import ast
from ..lang.errors import SourceSpan
from .documents import Document, uri_to_path
from .rpc import (INVALID_PARAMS, METHOD_NOT_FOUND, JsonRpcStream,
                  ProtocolError)

#: LSP DiagnosticSeverity per repro severity
_SEVERITY = {"error": 1, "warning": 2, "note": 3}

#: AST nodes whose event name resolves through ``bound.event_of``
_EVENT_NODES = (ast.AwaitExt, ast.AwaitInt, ast.EmitExt, ast.EmitInt)


def _span_range(span: SourceSpan) -> dict:
    """LSP range of a source span (1-based lines/cols → 0-based).

    Spans over ASCII sources are exact; astral characters earlier on the
    line would shift columns (the analyzer counts characters, LSP counts
    UTF-16 units) — Céu sources are ASCII, so this cannot trigger."""
    if span.start.line == 0:          # unknown span → file start
        return {"start": {"line": 0, "character": 0},
                "end": {"line": 0, "character": 0}}
    return {
        "start": {"line": span.start.line - 1,
                  "character": max(0, span.start.col - 1)},
        "end": {"line": span.end.line - 1,
                "character": max(0, span.end.col - 1)},
    }


def _lsp_diagnostic(diag: Diagnostic, uri: str) -> dict:
    out = {
        "range": _span_range(diag.span),
        "severity": _SEVERITY[diag.severity],
        "code": diag.code,
        "source": "repro-lint",
        "message": diag.message,
    }
    if diag.notes:
        out["relatedInformation"] = [
            {"location": {"uri": uri, "range": _span_range(span)},
             "message": label}
            for label, span in diag.notes]
    return out


class _OpenFile:
    def __init__(self, uri: str, text: str, version: int) -> None:
        self.document = Document(uri, text, version)
        self.analyzer = IncrementalAnalyzer(filename=uri_to_path(uri))
        self.report: Optional[Report] = None


class LspServer:
    """Single-threaded stdio LSP server (tests inject pipe streams)."""

    def __init__(self, reader=None, writer=None) -> None:
        self.stream = JsonRpcStream(
            reader if reader is not None else sys.stdin.buffer,
            writer if writer is not None else sys.stdout.buffer)
        self.files: dict[str, _OpenFile] = {}
        self.initialized = False
        self.shutdown_requested = False
        self.exit_code: Optional[int] = None

    # ------------------------------------------------------------- loop
    def serve_forever(self) -> int:
        while self.exit_code is None:
            try:
                message = self.stream.read()
            except ProtocolError:
                return 1
            if message is None:       # client hung up
                return 0 if self.shutdown_requested else 1
            self.handle(message)
        return self.exit_code

    def handle(self, message: dict) -> None:
        method = message.get("method")
        req_id = message.get("id")
        if method is None:
            return                    # a response; we never send requests
        params = message.get("params") or {}
        handler = getattr(self, "_on_" + method.replace("/", "_")
                          .replace("$", "dollar"), None)
        if handler is None:
            if req_id is not None:    # unknown notifications are ignored
                self.stream.error(req_id, METHOD_NOT_FOUND,
                                  f"unsupported method: {method}")
            return
        try:
            result = handler(params)
        except (KeyError, TypeError, ValueError) as err:
            if req_id is not None:
                self.stream.error(req_id, INVALID_PARAMS,
                                  f"{type(err).__name__}: {err}")
            return
        if req_id is not None:
            self.stream.respond(req_id, result)

    # -------------------------------------------------------- lifecycle
    def _on_initialize(self, params: dict):
        self.initialized = True
        return {
            "capabilities": {
                "positionEncoding": "utf-16",
                "textDocumentSync": {"openClose": True, "change": 2},
                "hoverProvider": True,
                "definitionProvider": True,
            },
            "serverInfo": {"name": "repro-lsp", "version": "1.0.0"},
        }

    def _on_initialized(self, params: dict) -> None:
        return None

    def _on_shutdown(self, params: dict):
        self.shutdown_requested = True
        return None

    def _on_exit(self, params: dict) -> None:
        self.exit_code = 0 if self.shutdown_requested else 1
        return None

    def _on_dollar_cancelRequest(self, params: dict) -> None:
        return None                   # all requests complete synchronously

    # ------------------------------------------------------------- sync
    def _on_textDocument_didOpen(self, params: dict) -> None:
        doc = params["textDocument"]
        open_file = _OpenFile(doc["uri"], doc["text"],
                              doc.get("version", 0))
        self.files[doc["uri"]] = open_file
        self._publish(open_file)
        return None

    def _on_textDocument_didChange(self, params: dict) -> None:
        uri = params["textDocument"]["uri"]
        open_file = self.files.get(uri)
        if open_file is None:
            return None
        open_file.document.apply(params.get("contentChanges", []),
                                 params["textDocument"].get("version", 0))
        self._publish(open_file)
        return None

    def _on_textDocument_didClose(self, params: dict) -> None:
        uri = params["textDocument"]["uri"]
        if self.files.pop(uri, None) is not None:
            self.stream.notify("textDocument/publishDiagnostics",
                               {"uri": uri, "diagnostics": []})
        return None

    def _publish(self, open_file: _OpenFile) -> None:
        report = open_file.analyzer.analyze(open_file.document.text)
        open_file.report = report
        self.stream.notify("textDocument/publishDiagnostics", {
            "uri": open_file.document.uri,
            "version": open_file.document.version,
            "diagnostics": [_lsp_diagnostic(d, open_file.document.uri)
                            for d in report.sorted()],
        })

    # ----------------------------------------------------------- queries
    def _node_at(self, open_file: _OpenFile,
                 position: dict) -> Optional[ast.Node]:
        bound = open_file.analyzer.last_bound
        if bound is None:
            return None
        offset = open_file.document.offset_at(position)
        best: Optional[ast.Node] = None
        best_width = 1 << 60
        for node in bound.program.walk():
            span = node.span
            if span.start.line == 0:
                continue
            if span.start.offset <= offset <= span.end.offset:
                width = span.end.offset - span.start.offset
                if width < best_width:
                    best, best_width = node, width
        return best

    def _on_textDocument_definition(self, params: dict):
        uri = params["textDocument"]["uri"]
        open_file = self.files.get(uri)
        if open_file is None:
            return None
        bound = open_file.analyzer.last_bound
        node = self._node_at(open_file, params["position"])
        decl_span: Optional[SourceSpan] = None
        while node is not None and decl_span is None and bound:
            if isinstance(node, ast.NameInt):
                sym = bound.var_of.get(node.nid)
                if sym is not None:
                    decl_span = sym.decl.span
            elif isinstance(node, _EVENT_NODES):
                sym = bound.event_of.get(node.nid)
                if sym is not None and sym.decl is not None:
                    decl_span = sym.decl.span
            node = bound.parent.get(node.nid) if decl_span is None \
                else node
        if decl_span is None:
            return None
        return {"uri": uri, "range": _span_range(decl_span)}

    def _on_textDocument_hover(self, params: dict):
        uri = params["textDocument"]["uri"]
        open_file = self.files.get(uri)
        if open_file is None or open_file.report is None:
            return None
        bounds = open_file.report.bounds
        if bounds is None:
            return None
        line = params["position"]["line"] + 1
        trail = bounds.trail_at(line)
        lines = ["```", f"program: {bounds.summary()}", "```"]
        if trail is not None:
            lines[1:1] = [f"trail frame: {trail.summary()}"]
        return {
            "contents": {"kind": "markdown", "value": "\n".join(lines)},
            "range": {"start": {"line": line - 1, "character": 0},
                      "end": {"line": line - 1, "character": 0}},
        }


def main(reader=None, writer=None) -> int:
    """Entry point for ``repro lsp``."""
    return LspServer(reader, writer).serve_forever()
