"""Open-document store with LSP position arithmetic.

LSP positions are ``{line, character}`` where ``line`` is 0-based and
``character`` counts **UTF-16 code units** (the protocol default; the
server also advertises ``positionEncoding: "utf-16"``).  A
:class:`Document` applies full or incremental
``textDocument/didChange`` edits and converts between LSP positions and
Python string offsets.
"""

from __future__ import annotations


class Document:
    """One open text document, synced via didChange events."""

    def __init__(self, uri: str, text: str, version: int = 0) -> None:
        self.uri = uri
        self.text = text
        self.version = version

    # ------------------------------------------------ position arithmetic
    def _line_offsets(self) -> list[int]:
        """Start offset of each 0-based line (always non-empty)."""
        offsets = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                offsets.append(i + 1)
        return offsets

    def offset_at(self, position: dict) -> int:
        """Python string offset of an LSP ``{line, character}``."""
        offsets = self._line_offsets()
        line = max(0, min(position.get("line", 0), len(offsets) - 1))
        start = offsets[line]
        end = (offsets[line + 1] if line + 1 < len(offsets)
               else len(self.text))
        units = position.get("character", 0)
        offset = start
        while offset < end and units > 0:
            ch = self.text[offset]
            if ch == "\n":
                break
            units -= 2 if ord(ch) > 0xFFFF else 1
            offset += 1
        return offset

    def position_at(self, offset: int) -> dict:
        """LSP position of a Python string offset."""
        offset = max(0, min(offset, len(self.text)))
        offsets = self._line_offsets()
        line = 0
        for i, start in enumerate(offsets):
            if start <= offset:
                line = i
            else:
                break
        character = sum(2 if ord(ch) > 0xFFFF else 1
                        for ch in self.text[offsets[line]:offset])
        return {"line": line, "character": character}

    # ------------------------------------------------------------- edits
    def apply(self, changes: list[dict], version: int) -> None:
        """Apply ``contentChanges`` in order (full or ranged)."""
        for change in changes:
            rng = change.get("range")
            if rng is None:
                self.text = change.get("text", "")
            else:
                start = self.offset_at(rng["start"])
                end = self.offset_at(rng["end"])
                if end < start:
                    start, end = end, start
                self.text = (self.text[:start] + change.get("text", "")
                             + self.text[end:])
        self.version = version


def uri_to_path(uri: str) -> str:
    """Filesystem path of a ``file://`` URI (other schemes pass through
    verbatim — the analyzer only uses it as a display name)."""
    if uri.startswith("file://"):
        from urllib.parse import unquote, urlparse
        return unquote(urlparse(uri).path) or uri
    return uri
