"""Language Server Protocol front end for the analysis engine.

``repro lsp`` speaks LSP 3.x over stdio: JSON-RPC 2.0 with
``Content-Length`` framing (:mod:`repro.lsp.rpc`), incremental
UTF-16 document sync (:mod:`repro.lsp.documents`), and a dispatcher
(:mod:`repro.lsp.server`) that runs one
:class:`~repro.analysis.incremental.IncrementalAnalyzer` per open
document — diagnostics are re-published at keystroke latency, with the
same codes and messages as ``repro lint``.
"""

from .documents import Document
from .rpc import JsonRpcStream
from .server import LspServer, main

__all__ = ["Document", "JsonRpcStream", "LspServer", "main"]
