"""Symbol tables for Céu programs.

Céu is fully static: no recursion and no dynamic allocation, so every
variable has exactly one live instance and can be identified by its
declaration site.  Symbols therefore double as the keys used by the memory
layout (§4.2), the gate allocator (§4.3) and the reference VM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang import ast
from ..lang.errors import BindError, SourceSpan


@dataclass(eq=False)
class VarSymbol:
    """A Céu variable (or fixed-size vector)."""

    name: str
    type: ast.TypeRef
    decl: ast.Declarator
    array_size: Optional[int] = None  # None for scalars
    uid: int = -1                     # dense index assigned by the binder

    @property
    def is_array(self) -> bool:
        return self.array_size is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arr = f"[{self.array_size}]" if self.is_array else ""
        return f"<var {self.type}{arr} {self.name}#{self.uid}>"


@dataclass(eq=False)
class EventSymbol:
    """An external input/output or internal event."""

    name: str
    kind: str  # "input" | "internal" | "output"
    type: ast.TypeRef
    decl: Optional[ast.DeclEvent]
    uid: int = -1

    @property
    def is_input(self) -> bool:
        return self.kind == "input"

    @property
    def is_internal(self) -> bool:
        return self.kind == "internal"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} event {self.name}#{self.uid}>"


class Scope:
    """A lexical scope (one per block).  Declarations are *sequential*:
    a name is only visible to statements after its declaration, matching
    the paper's "variables and events must be declared before they are
    used" rule."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.vars: dict[str, VarSymbol] = {}

    def declare(self, sym: VarSymbol, span: SourceSpan) -> None:
        if sym.name in self.vars:
            raise BindError(f"variable `{sym.name}` redeclared in the same "
                            f"block", span)
        self.vars[sym.name] = sym

    def lookup(self, name: str) -> Optional[VarSymbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            sym = scope.vars.get(name)
            if sym is not None:
                return sym
            scope = scope.parent
        return None


@dataclass
class Annotations:
    """`pure` / `deterministic` declarations for C functions (§2.6)."""

    pure: set[str] = field(default_factory=set)
    groups: list[frozenset[str]] = field(default_factory=list)

    @staticmethod
    def _strip(name: str) -> str:
        return name[1:] if name.startswith("_") else name

    def add_pure(self, names: list[str]) -> None:
        self.pure.update(self._strip(n) for n in names)

    def add_group(self, names: list[str]) -> None:
        self.groups.append(frozenset(self._strip(n) for n in names))

    def compatible(self, f: str, g: str) -> bool:
        """May calls to C functions ``f`` and ``g`` run concurrently?

        ``pure`` functions run concurrently with anything; two (distinct or
        identical) functions run concurrently iff some ``deterministic``
        group contains both.  A function is never implicitly compatible
        with itself: concurrent ``_f() || _f()`` is refused unless ``_f``
        is pure or listed in a group naming it (the strict reading of the
        paper's "Céu is strict about determinism").
        """
        if f in self.pure or g in self.pure:
            return True
        for group in self.groups:
            if f in group and g in group:
                if f != g:
                    return True
                # same function twice: require it to be pure or in a
                # group where it is the sole member listed with itself —
                # we accept membership in any group as opt-in for f||f.
                return True
        return False


def declaration_signature(stmt: ast.Stmt) -> tuple:
    """The binder-visible exports of one top-level statement, as a
    hashable value — empty for statements that declare nothing.

    Two statements with equal signatures contribute the same
    names/kinds/types to every later scope, so a region whose own text
    and whose predecessors' signatures are both unchanged binds the same
    symbols.  The incremental analyzer keys its per-region memo on
    (content, environment signature) and re-runs dependents when a
    predecessor's signature changes.
    """
    if isinstance(stmt, ast.DeclEvent):
        return ("event", stmt.kind, str(stmt.type), tuple(stmt.names))
    if isinstance(stmt, ast.DeclVar):
        if stmt.array is None:
            array: tuple = ()
        elif isinstance(stmt.array, ast.Num):
            array = ("array", stmt.array.value)
        else:
            array = ("array", "?")
        return ("var", str(stmt.type), array,
                tuple(d.name for d in stmt.decls))
    if isinstance(stmt, ast.PureDecl):
        return ("pure", tuple(stmt.names))
    if isinstance(stmt, ast.DeterministicDecl):
        return ("deterministic", tuple(stmt.names))
    return ()
