"""Name resolution and structural checks.

The binder produces a :class:`BoundProgram`, the shared input of every later
stage (bounded-execution check, flow graph, temporal analysis, memory
layout, code generation and the reference VM).  It resolves:

* variable references (``NameInt``) to :class:`VarSymbol`s,
* await/emit statements to :class:`EventSymbol`s,
* ``break`` statements to their enclosing ``loop``,
* ``return`` statements to their *value boundary* — the innermost block
  used as the right-hand side of an assignment (``v = par do ... end``,
  ``ret = async do ... end``, ``v = do ... end``) or the program itself,

and enforces the contextual rules of the paper:

* ``emit`` of input events and of time only inside ``async`` (§2.8);
* ``async`` bodies contain no parallel blocks, no awaits, no internal
  events, and no assignments to variables of outer blocks (§2.7);
* events and variables are declared before use; inputs are uppercase,
  internals lowercase (§2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang import ast
from ..lang.errors import AsyncError, BindError
from .symbols import Annotations, EventSymbol, Scope, VarSymbol


@dataclass
class BoundProgram:
    """A parsed program plus all binder-computed facts."""

    program: ast.Program
    events: dict[str, EventSymbol] = field(default_factory=dict)
    variables: list[VarSymbol] = field(default_factory=list)
    var_of: dict[int, VarSymbol] = field(default_factory=dict)     # NameInt.nid
    event_of: dict[int, EventSymbol] = field(default_factory=dict)  # await/emit nid
    break_target: dict[int, ast.Loop] = field(default_factory=dict)
    ret_boundary: dict[int, Optional[ast.Node]] = field(default_factory=dict)
    sym_of_decl: dict[int, VarSymbol] = field(default_factory=dict)  # Declarator.nid
    annotations: Annotations = field(default_factory=Annotations)
    async_blocks: list[ast.AsyncBlock] = field(default_factory=list)
    parent: dict[int, ast.Node] = field(default_factory=dict)
    #: nodes that act as value boundaries (SetExp-positioned blocks)
    value_boundaries: set[int] = field(default_factory=set)
    #: C function names referenced anywhere (for reporting / codegen)
    c_symbols: set[str] = field(default_factory=set)

    def event(self, name: str) -> EventSymbol:
        return self.events[name]

    def input_events(self) -> list[EventSymbol]:
        return [e for e in self.events.values() if e.kind == "input"]

    def internal_events(self) -> list[EventSymbol]:
        return [e for e in self.events.values() if e.kind == "internal"]


class _Binder:
    def __init__(self, program: ast.Program):
        self.program = program
        self.out = BoundProgram(program)
        self._var_uid = 0
        self._evt_uid = 0
        self._scope = Scope()
        self._loops: list[ast.Loop] = []
        self._boundaries: list[ast.Node] = []  # value-boundary stack
        self._async_depth = 0
        self._async_scope: Optional[Scope] = None  # outermost scope inside async

    # ------------------------------------------------------------- helpers
    def _declare_event(self, decl: ast.DeclEvent) -> None:
        for name in decl.names:
            if name in self.out.events:
                raise BindError(f"event `{name}` redeclared", decl.span)
            sym = EventSymbol(name, decl.kind, decl.type, decl,
                              uid=self._evt_uid)
            self._evt_uid += 1
            self.out.events[name] = sym

    def _resolve_event(self, name: str, kinds: tuple[str, ...],
                       node: ast.Node) -> EventSymbol:
        sym = self.out.events.get(name)
        if sym is None:
            raise BindError(f"event `{name}` is not declared", node.span)
        if sym.kind not in kinds:
            raise BindError(
                f"event `{name}` is `{sym.kind}`, expected "
                f"{' or '.join(kinds)}", node.span)
        self.out.event_of[node.nid] = sym
        return sym

    def _declare_var(self, decl_stmt: ast.DeclVar,
                     declarator: ast.Declarator) -> VarSymbol:
        size: Optional[int] = None
        if decl_stmt.array is not None:
            if not isinstance(decl_stmt.array, ast.Num):
                raise BindError("vector size must be an integer literal "
                                "(Céu is fully static)", decl_stmt.span)
            size = decl_stmt.array.value
            if size <= 0:
                raise BindError("vector size must be positive",
                                decl_stmt.span)
        sym = VarSymbol(declarator.name, decl_stmt.type, declarator,
                        array_size=size, uid=self._var_uid)
        self._var_uid += 1
        self.out.variables.append(sym)
        self.out.sym_of_decl[declarator.nid] = sym
        self._scope.declare(sym, declarator.span)
        return sym

    def _set_parent(self, node: ast.Node) -> None:
        for child in node.children():
            self.out.parent[child.nid] = node

    # --------------------------------------------------------------- walks
    def bind(self) -> BoundProgram:
        self._bind_block(self.program.body)
        self.out.parent[self.program.body.nid] = self.program
        return self.out

    def _bind_block(self, block: ast.Block,
                    new_scope: bool = True) -> None:
        self._set_parent(block)
        saved = self._scope
        if new_scope:
            self._scope = Scope(saved)
        try:
            for stmt in block.stmts:
                self._bind_stmt(stmt)
        finally:
            self._scope = saved

    def _bind_stmt(self, s: ast.Stmt) -> None:
        self._set_parent(s)
        if isinstance(s, (ast.Nothing, ast.CBlockStmt)):
            return
        if isinstance(s, ast.DeclEvent):
            if self._async_depth:
                raise AsyncError("event declarations are not allowed inside "
                                 "`async`", s.span)
            self._declare_event(s)
            return
        if isinstance(s, ast.PureDecl):
            self.out.annotations.add_pure(s.names)
            return
        if isinstance(s, ast.DeterministicDecl):
            self.out.annotations.add_group(s.names)
            return
        if isinstance(s, ast.DeclVar):
            for declarator in s.decls:
                # initializer sees only *earlier* declarations
                if declarator.init is not None:
                    self._bind_setexp(declarator.init, declarator)
                self._declare_var(s, declarator)
            return
        if isinstance(s, (ast.AwaitExt, ast.AwaitInt, ast.AwaitTime,
                          ast.AwaitExp, ast.AwaitForever)):
            self._bind_await(s)
            return
        if isinstance(s, (ast.EmitExt, ast.EmitInt, ast.EmitTime)):
            self._bind_emit(s)
            return
        if isinstance(s, ast.If):
            self._bind_exp(s.cond)
            self._bind_block(s.then)
            if s.orelse is not None:
                self._bind_block(s.orelse)
            return
        if isinstance(s, ast.Loop):
            self._loops.append(s)
            try:
                self._bind_block(s.body)
            finally:
                self._loops.pop()
            return
        if isinstance(s, ast.Break):
            if not self._loops:
                raise BindError("`break` outside of a loop", s.span)
            self.out.break_target[s.nid] = self._loops[-1]
            return
        if isinstance(s, ast.ParStmt):
            if self._async_depth:
                raise AsyncError("parallel blocks are not allowed inside "
                                 "`async`", s.span)
            for blk in s.blocks:
                self._bind_block(blk)
            return
        if isinstance(s, ast.CCallStmt):
            self._bind_exp(s.call)
            return
        if isinstance(s, ast.CallStmt):
            self._bind_exp(s.exp)
            return
        if isinstance(s, ast.Assign):
            self._bind_lvalue(s.target)
            self._bind_setexp(s.value, s)
            return
        if isinstance(s, ast.Return):
            if s.value is not None:
                self._bind_exp(s.value)
            boundary = self._boundaries[-1] if self._boundaries else None
            self.out.ret_boundary[s.nid] = boundary
            return
        if isinstance(s, ast.DoBlock):
            self._bind_block(s.body)
            return
        if isinstance(s, ast.AsyncBlock):
            self._bind_async(s)
            return
        raise BindError(f"unhandled statement {type(s).__name__}", s.span)

    def _bind_async(self, s: ast.AsyncBlock) -> None:
        if self._async_depth:
            raise AsyncError("nested `async` blocks are not allowed", s.span)
        self.out.async_blocks.append(s)
        # `return` inside an async always terminates the async itself
        self._boundaries.append(s)
        self._async_depth += 1
        saved_loops, self._loops = self._loops, []
        saved_async_scope = self._async_scope
        self._async_scope = Scope(self._scope)
        saved_scope = self._scope
        self._scope = self._async_scope
        try:
            self._bind_block(s.body, new_scope=False)
        finally:
            self._scope = saved_scope
            self._async_scope = saved_async_scope
            self._loops = saved_loops
            self._async_depth -= 1
            self._boundaries.pop()

    def _bind_await(self, s: ast.Stmt) -> None:
        if self._async_depth and not isinstance(s, ast.AwaitForever):
            raise AsyncError("`await` is not allowed inside `async`", s.span)
        if isinstance(s, ast.AwaitExt):
            self._resolve_event(s.event, ("input",), s)
        elif isinstance(s, ast.AwaitInt):
            self._resolve_event(s.event, ("internal",), s)
        elif isinstance(s, ast.AwaitExp):
            self._bind_exp(s.exp)
        # AwaitTime / AwaitForever carry no names

    def _bind_emit(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.EmitInt):
            if self._async_depth:
                raise AsyncError("internal events cannot be manipulated "
                                 "inside `async`", s.span)
            sym = self._resolve_event(s.event, ("internal",), s)
        elif isinstance(s, ast.EmitExt):
            sym = self._resolve_event(s.event, ("input", "output"), s)
            if sym.kind == "input" and not self._async_depth:
                raise BindError(
                    f"input event `{s.event}` can only be emitted from an "
                    f"`async` block (simulation, §2.8)", s.span)
        else:  # EmitTime
            if not self._async_depth:
                raise BindError("wall-clock time can only be emitted from "
                                "an `async` block", s.span)
            return
        if s.value is not None:
            self._bind_exp(s.value)
            if sym.type.is_void:
                raise BindError(f"event `{sym.name}` carries no value",
                                s.span)
        elif not sym.type.is_void and isinstance(s, ast.EmitExt):
            raise BindError(f"event `{sym.name}` carries a value of type "
                            f"`{sym.type}`; `emit {sym.name} = <exp>` "
                            f"expected", s.span)

    def _bind_setexp(self, value: ast.Node, owner: ast.Node) -> None:
        self.out.parent[value.nid] = owner
        if isinstance(value, ast.Exp):
            self._bind_exp(value)
            return
        # statement-valued rvalue: awaits bind normally; block forms become
        # value boundaries for `return`.
        if isinstance(value, (ast.AwaitExt, ast.AwaitInt, ast.AwaitTime,
                              ast.AwaitExp)):
            self._bind_await(value)
            return
        if isinstance(value, (ast.DoBlock, ast.ParStmt, ast.AsyncBlock)):
            self.out.value_boundaries.add(value.nid)
            self._boundaries.append(value)
            try:
                self._bind_stmt(value)
            finally:
                self._boundaries.pop()
            return
        raise BindError("invalid right-hand side", value.span)

    def _bind_lvalue(self, e: ast.Exp) -> None:
        if isinstance(e, ast.NameInt):
            self._bind_exp(e)
            sym = self.out.var_of[e.nid]
            if (self._async_depth and self._async_scope is not None
                    and not self._declared_inside_async(sym)):
                raise AsyncError(
                    f"`async` blocks cannot assign to variable "
                    f"`{sym.name}` of an outer block", e.span)
            return
        if isinstance(e, (ast.Index, ast.FieldAccess)):
            self._bind_lvalue_base(e)
            return
        if isinstance(e, ast.Unop) and e.op == "*":
            self._bind_exp(e.operand)
            return
        if isinstance(e, ast.NameC):
            self.out.c_symbols.add(e.c_name)
            return
        raise BindError("invalid assignment target", e.span)

    def _bind_lvalue_base(self, e: ast.Exp) -> None:
        """`a[i] = ...` / `p->f = ...`: index/field chains over an lvalue."""
        if isinstance(e, ast.Index):
            self._bind_lvalue(e.base)
            self._bind_exp(e.index)
        elif isinstance(e, ast.FieldAccess):
            self._bind_lvalue(e.base)
        else:  # pragma: no cover - guarded by caller
            raise BindError("invalid assignment target", e.span)

    def _declared_inside_async(self, sym: VarSymbol) -> bool:
        scope: Optional[Scope] = self._scope
        while scope is not None:
            if sym.name in scope.vars and scope.vars[sym.name] is sym:
                return True
            if scope is self._async_scope:
                return False
            scope = scope.parent
        return False

    def _bind_exp(self, e: ast.Exp) -> None:
        self._set_parent(e)
        if isinstance(e, ast.NameInt):
            sym = self._scope.lookup(e.name)
            if sym is None:
                raise BindError(f"variable `{e.name}` is not declared",
                                e.span)
            self.out.var_of[e.nid] = sym
            return
        if isinstance(e, ast.NameC):
            self.out.c_symbols.add(e.c_name)
            return
        if isinstance(e, (ast.Num, ast.Str, ast.Null, ast.SizeOf)):
            return
        if isinstance(e, ast.Unop):
            self._bind_exp(e.operand)
            return
        if isinstance(e, ast.Binop):
            self._bind_exp(e.left)
            self._bind_exp(e.right)
            return
        if isinstance(e, ast.Index):
            self._bind_exp(e.base)
            self._bind_exp(e.index)
            return
        if isinstance(e, ast.CallExp):
            self._bind_exp(e.func)
            for a in e.args:
                self._bind_exp(a)
            return
        if isinstance(e, ast.FieldAccess):
            self._bind_exp(e.base)  # field names themselves are C-side
            return
        if isinstance(e, ast.Cast):
            self._bind_exp(e.operand)
            return
        raise BindError(f"unhandled expression {type(e).__name__}", e.span)


def bind(program: ast.Program) -> BoundProgram:
    """Resolve names and check contextual rules; returns the bound program."""
    return _Binder(program).bind()
