"""Semantic analysis: binder, bounded-execution check, annotations."""

from .binder import BoundProgram, bind
from .bounded import check_bounded, loop_outcomes
from .symbols import Annotations, EventSymbol, Scope, VarSymbol

__all__ = ["bind", "BoundProgram", "check_bounded", "loop_outcomes",
           "Annotations", "EventSymbol", "VarSymbol", "Scope"]
