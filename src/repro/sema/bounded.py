"""Bounded-execution analysis (§2.5).

A reaction chain must run in bounded time; the only statements that can
violate this are loops (C calls are *assumed* non-looping, §2.5).  The rule:
**every path through a loop body must contain at least one ``await`` or
``break``** (``return`` also escapes).  The paper's acceptance examples:

* refused — ``loop do v = v+1 end``;
* refused — ``loop do if v then await A end end`` (else path is zero-time);
* refused — ``loop do par/or do await A with v = 1 end end`` (the ``par/or``
  rejoins in zero time through its second branch);
* accepted — ``loop do await A end``;
* accepted — ``loop do par/and do await A with v = 1 end end``.

The analysis is the structural induction the paper describes, implemented as
an *outcome set* lattice.  Each statement is mapped to the set of ways its
execution can leave the statement:

===========  =============================================================
``CA``       completes, and the path crossed an await (took time)
``CZ``       completes in zero time
``EA``/``EZ``  escapes via ``break`` (awaited / zero-time path)
``RA``/``RZ``  escapes via ``return`` (awaited / zero-time path)
===========  =============================================================

An empty set means control never leaves (e.g. ``await forever``, a ``par``
that never rejoins).  A loop is valid iff its body's outcome set does not
contain ``CZ``.  ``async`` bodies are exempt — unbounded loops are their
purpose (§2.7).

The walk reports findings through a :class:`BoundedSink`.  The default
sink raises :class:`BoundedError` at the first tight loop (the compiler's
refusal); the analysis engine substitutes a collecting sink that records
every tight loop, unreachable statement, and never-rejoining parallel and
lets the walk continue.
"""

from __future__ import annotations

from ..lang import ast
from ..lang.errors import BoundedError
from .binder import BoundProgram

CA, CZ, EA, EZ, RA, RZ = "CA", "CZ", "EA", "EZ", "RA", "RZ"

_COMPLETIONS = {CA, CZ}
_AWAITED = {CA: True, CZ: False, EA: True, EZ: False, RA: True, RZ: False}
_MARK_AWAITED = {CZ: CA, CA: CA, EZ: EA, EA: EA, RZ: RA, RA: RA}

Outcomes = frozenset


class BoundedSink:
    """Receiver for the walk's findings; the default refuses tight loops
    and ignores the informational ones."""

    def tight_loop(self, loop: ast.Loop) -> None:
        raise BoundedError(
            "loop body has a path with neither `await` nor `break` — "
            "the reaction chain would not terminate", loop.span)

    def unreachable(self, stmt: ast.Stmt, count: int) -> None:
        """``stmt`` (and ``count - 1`` statements after it) can never run."""

    def par_never_rejoins(self, par: ast.ParStmt) -> None:
        """A rejoining ``par/or``/``par/and`` whose control never leaves."""


_RAISING = BoundedSink()


def check_bounded(bound: BoundProgram) -> None:
    """Raise :class:`BoundedError` on the first tight loop found."""
    _outcomes_block(bound.program.body, bound, _RAISING)


def analyze_bounded(bound: BoundProgram, sink: BoundedSink) -> Outcomes:
    """Run the full walk, reporting every finding through ``sink``
    (accumulate-don't-raise when the sink does not raise)."""
    return _outcomes_block(bound.program.body, bound, sink)


def loop_outcomes(bound: BoundProgram, node: ast.Node) -> Outcomes:
    """Expose the outcome set of an arbitrary statement (used by tests)."""
    return _outcomes_stmt(node, bound, _RAISING)


def _seq(first: Outcomes, rest: Outcomes) -> Outcomes:
    """Compose outcomes of `first; rest` paths."""
    out = {o for o in first if o not in _COMPLETIONS}
    for completion in first & _COMPLETIONS:
        for nxt in rest:
            out.add(_MARK_AWAITED[nxt] if _AWAITED[completion] else nxt)
    return frozenset(out)


def _outcomes_block(block: ast.Block, bound: BoundProgram,
                    sink: BoundedSink) -> Outcomes:
    acc: Outcomes = frozenset({CZ})  # empty block completes instantly
    for i, stmt in enumerate(block.stmts):
        acc = _seq(acc, _outcomes_stmt(stmt, bound, sink))
        if not acc & _COMPLETIONS:
            # nothing ever flows past this statement; later statements are
            # unreachable but must still be *checked* for tight loops.
            rest = block.stmts[i + 1:]
            if rest:
                sink.unreachable(rest[0], len(rest))
            for later in rest:
                _outcomes_stmt(later, bound, sink)
            return acc
    return acc


def _setexp_outcomes(value: ast.Node, bound: BoundProgram,
                     sink: BoundedSink) -> Outcomes:
    if isinstance(value, ast.Exp):
        return frozenset({CZ})
    return _outcomes_stmt(value, bound, sink)


def _outcomes_stmt(s: ast.Stmt, bound: BoundProgram,
                   sink: BoundedSink) -> Outcomes:
    """Outcome set of a statement, converting caught returns at value
    boundaries (``v = do/par/async ... end``) into completions."""
    out = _outcomes_stmt_raw(s, bound, sink)
    if s.nid in bound.value_boundaries:
        mapped = {RA: CA, RZ: CZ}
        out = frozenset(mapped.get(o, o) for o in out)
    return out


def _outcomes_stmt_raw(s: ast.Stmt, bound: BoundProgram,
                       sink: BoundedSink) -> Outcomes:
    if isinstance(s, (ast.AwaitExt, ast.AwaitInt, ast.AwaitTime,
                      ast.AwaitExp)):
        return frozenset({CA})
    if isinstance(s, ast.AwaitForever):
        return frozenset()
    if isinstance(s, ast.Break):
        return frozenset({EZ})
    if isinstance(s, ast.Return):
        return frozenset({RZ})
    if isinstance(s, ast.AsyncBlock):
        # the synchronous side awaits the async's completion event (§2.7);
        # loops inside the async are intentionally unchecked.
        return frozenset({CA})
    if isinstance(s, ast.If):
        then = _outcomes_block(s.then, bound, sink)
        if s.orelse is not None:
            return then | _outcomes_block(s.orelse, bound, sink)
        return then | frozenset({CZ})
    if isinstance(s, ast.Loop):
        body = _outcomes_block(s.body, bound, sink)
        if CZ in body:
            sink.tight_loop(s)
            # a collecting sink returns: continue as if the offending
            # zero-time path did not exist, to find further issues
            body = body - {CZ}
        out: set[str] = set()
        if EA in body:
            out.add(CA)
        if EZ in body:
            out.add(CZ)
        out |= {o for o in body if o in (RA, RZ)}
        return frozenset(out)
    if isinstance(s, ast.ParStmt):
        branch_outs = [_outcomes_block(b, bound, sink) for b in s.blocks]
        out: set[str] = set()
        for branch in branch_outs:
            out |= {o for o in branch if o not in _COMPLETIONS}
        if s.mode == "or":
            for branch in branch_outs:
                out |= branch & _COMPLETIONS
        elif s.mode == "and":
            if all(branch & _COMPLETIONS for branch in branch_outs):
                if all(CZ in branch for branch in branch_outs):
                    out.add(CZ)
                if any(CA in branch for branch in branch_outs):
                    out.add(CA)
        # plain `par` never rejoins: no completions
        if s.mode in ("or", "and") and not out:
            sink.par_never_rejoins(s)
        return frozenset(out)
    if isinstance(s, ast.DoBlock):
        return _outcomes_block(s.body, bound, sink)
    if isinstance(s, ast.DeclVar):
        acc: Outcomes = frozenset({CZ})
        for declarator in s.decls:
            if declarator.init is not None:
                acc = _seq(acc, _setexp_outcomes(declarator.init, bound,
                                                 sink))
        return acc
    if isinstance(s, ast.Assign):
        return _setexp_outcomes(s.value, bound, sink)
    # declarations, emits, C calls, annotations, nothing: zero-time
    return frozenset({CZ})


#: public aliases for the incremental analyzer (docs/ANALYSIS.md), which
#: replicates the top-level `_outcomes_block` walk over memoized
#: per-region statement outcomes
COMPLETIONS = _COMPLETIONS
seq_outcomes = _seq


def statement_outcomes(stmt: ast.Stmt, bound: BoundProgram,
                       sink: BoundedSink) -> Outcomes:
    """Outcome set of one top-level statement (value-boundary aware)."""
    return _outcomes_stmt(stmt, bound, sink)
