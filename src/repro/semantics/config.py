"""The explicit configuration of the reference semantics.

A configuration is ⟨F, E, A, Θ, σ, t⟩ — trail forest F, pending-emit
stack E, agenda A (the per-reaction priority bag), timer residues Θ,
store σ, clock t.  This module defines the data: control frames, trail
and join records, the pending-emit stack entries, escape signals, and
``async`` jobs.  The rules live in :mod:`repro.semantics.rules` /
:mod:`repro.semantics.machine`.

Control is an explicit *frame stack* per trail (innermost last), not a
generator: ``SeqF`` is a program point inside a block, ``LoopF`` marks
an enclosing ``loop``, ``BoundaryF`` a value boundary (``v = do … end``
or the program), ``BindF`` the pending destination of a statement-valued
right-hand side, ``DeclF`` a partially-executed declarator list.
``break``/``return`` are *unwinding* rules over this stack — no Python
exceptions cross trail boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..lang import ast
from ..sema.symbols import VarSymbol


# ---------------------------------------------------------------------------
# escape signals (plain data — never raised)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class BreakSig:
    """``break`` travelling to its binding ``loop``."""

    target: ast.Loop


@dataclass(frozen=True, slots=True)
class ReturnSig:
    """``return [v]`` travelling to its value boundary (None = program)."""

    boundary: Optional[ast.Node]
    value: Any


# ---------------------------------------------------------------------------
# control frames
# ---------------------------------------------------------------------------

class SeqF:
    """A program point: the statements of one block, next index ``i``."""

    __slots__ = ("stmts", "i")

    def __init__(self, stmts: list, i: int = 0):
        self.stmts = stmts
        self.i = i


class LoopF:
    """An entered ``loop`` — fall-through of its body re-enters it."""

    __slots__ = ("node",)

    def __init__(self, node: ast.Loop):
        self.node = node


class BoundaryF:
    """A value boundary: ``return`` targeting ``node`` lands here;
    fall-through produces 0 (the VM's ``exec_do`` contract)."""

    __slots__ = ("node",)

    def __init__(self, node: ast.Node):
        self.node = node


class BindF:
    """Pending destination of a statement-valued right-hand side:
    ``("assign", target_exp)`` or ``("decl", VarSymbol)``."""

    __slots__ = ("kind", "payload")

    def __init__(self, kind: str, payload: Any):
        self.kind = kind
        self.payload = payload


class DeclF:
    """A ``DeclVar`` statement mid-way through its declarator list."""

    __slots__ = ("stmt", "i")

    def __init__(self, stmt: ast.DeclVar, i: int = 0):
        self.stmt = stmt
        self.i = i


# ---------------------------------------------------------------------------
# trail forest
# ---------------------------------------------------------------------------

class SpecTrail:
    """One line of execution: a label, a spawn path (region prefix
    test = §4.3 abort), a frame stack, and its suspension state."""

    __slots__ = ("label", "path", "parent_join", "branch_index", "frames",
                 "alive", "waiting", "time_base")

    def __init__(self, label: str, path: tuple,
                 parent_join: Optional["SpecJoin"] = None,
                 branch_index: int = 0):
        self.label = label
        self.path = path
        self.parent_join = parent_join
        self.branch_index = branch_index
        self.frames: list = []
        self.alive = True
        #: None while runnable, else "ext"/"int"/"time"/"forever"/
        #: "par"/"async"
        self.waiting: Optional[str] = None
        self.time_base = 0

    def in_region(self, prefix: tuple) -> bool:
        return self.path[:len(prefix)] == prefix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.alive else "dead"
        return (f"<SpecTrail {self.label} {state} waiting={self.waiting} "
                f"frames={len(self.frames)}>")


@dataclass(eq=False)
class SpecJoin:
    """Rejoin bookkeeping for one execution of a parallel statement."""

    node: ast.ParStmt
    mode: str                 # "par" | "or" | "and"
    owner: SpecTrail
    region: tuple             # owner.path + (region_id,)
    depth: int                # syntactic nesting depth (§4.1 priority)
    n_branches: int
    completed: set = field(default_factory=set)
    or_enqueued: bool = False
    value: Any = None
    has_value: bool = False
    cancelled: bool = False

    def branch_done(self, index: int) -> bool:
        self.completed.add(index)
        return self.mode == "and" and len(self.completed) == self.n_branches


@dataclass(eq=False)
class SpecEscape:
    """A pending one-hop escape (break/return crossing a parallel)."""

    trail: SpecTrail
    signal: Any               # BreakSig | ReturnSig
    cancelled: bool = False


# ---------------------------------------------------------------------------
# the run stack: who is executing *right now* within the reaction
# ---------------------------------------------------------------------------

class RunF:
    """An executing trail.  ``pending`` is the resume mode to deliver on
    the first step: ("start",) | ("value", v) | ("done", v) |
    ("escape", sig); None once delivered."""

    __slots__ = ("trail", "pending")

    def __init__(self, trail: SpecTrail, pending: tuple):
        self.trail = trail
        self.pending: Optional[tuple] = pending


class EmitF:
    """One entry of the §2.2 pending-emit stack: an in-flight internal
    emission whose awakened trails run to halt (in ``queue`` order)
    before the emitter below resumes."""

    __slots__ = ("name", "value", "queue")

    def __init__(self, name: str, value: Any, queue: list):
        self.name = name
        self.value = value
        self.queue = queue


# ---------------------------------------------------------------------------
# async jobs (§2.7–2.8)
# ---------------------------------------------------------------------------

class ASeqF:
    """Program point inside an ``async`` body."""

    __slots__ = ("stmts", "i")

    def __init__(self, stmts: list, i: int = 0):
        self.stmts = stmts
        self.i = i


class ALoopF:
    """An entered ``loop`` inside an ``async``; ``restart`` is set at
    the back edge so the re-entry happens *after* the tick yield."""

    __slots__ = ("node", "restart")

    def __init__(self, node: ast.Loop):
        self.node = node
        self.restart = False


class SpecJob:
    """One executing ``async`` block."""

    __slots__ = ("seq", "node", "owner", "path", "frames", "done",
                 "aborted", "result")

    def __init__(self, seq: int, node: ast.AsyncBlock, owner: SpecTrail):
        self.seq = seq
        self.node = node
        self.owner = owner
        self.path = owner.path
        self.frames: list = [ASeqF(node.body.stmts)]
        self.done = False
        self.aborted = False
        self.result: Any = None

    def in_region(self, prefix: tuple) -> bool:
        return self.path[:len(prefix)] == prefix


__all__ = [
    "ALoopF", "ASeqF", "BindF", "BoundaryF", "BreakSig", "DeclF", "EmitF",
    "LoopF", "ReturnSig", "RunF", "SeqF", "SpecEscape", "SpecJob",
    "SpecJoin", "SpecTrail", "VarSymbol",
]
