"""Executable reference semantics — the specification oracle.

A pure, slow, *small-step* operational semantics of the reaction rules
(§2.2 internal-event stack policy, §2.3 timer delta compensation, §4.1
join priorities, §4.3 abort/trail clearing), independent of the VM's
scheduler machinery.  Where the VM realises trails as Python generators
and the emit stack as the Python call stack, the semantics operates on
an **explicit configuration**:

* a *trail forest* — each trail is a stack of control frames over the
  bound AST (:mod:`repro.semantics.config`);
* a *pending-emit stack* — the §2.2 stack of in-flight internal
  emissions, reified as data;
* *timer residues* — armed deadlines with their logical arming base,
  so late ``go_time`` calls compensate exactly as §2.3 prescribes.

One :meth:`Machine.step_once` call applies one rule.  The only parts
shared with the VM are the *data layer* (binder output, expression
evaluator, flat memory, C environment) — everything about reaction
scheduling is re-derived here from the paper, which is what makes the
three-way VM ↔ C ↔ semantics differential (docs/FUZZING.md) meaningful.

Entry point::

    from repro.semantics import run_script
    machine = run_script(src, [("E", "A", 1), ("T", 100000)])
    machine.signature()           # Trace-compatible full signature
    machine.portable_signature()  # cross-backend projection

See docs/SEMANTICS.md for the rule-by-rule notation.
"""

from .config import (BindF, BoundaryF, BreakSig, DeclF, EmitF, LoopF,
                     ReturnSig, RunF, SeqF, SpecEscape, SpecJob, SpecJoin,
                     SpecTrail)
from .machine import Machine, run_script

__all__ = [
    "BindF", "BoundaryF", "BreakSig", "DeclF", "EmitF", "LoopF",
    "Machine", "ReturnSig", "RunF", "SeqF", "SpecEscape", "SpecJob",
    "SpecJoin", "SpecTrail", "run_script",
]
