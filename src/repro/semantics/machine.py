"""The reference machine: reaction chains over the explicit configuration.

One :meth:`Machine.step_once` applies one rule:

* **[run]** — the top run-stack trail executes one statement
  (:mod:`repro.semantics.rules`);
* **[emit-wake] / [emit-pop]** — the top pending-emit frame wakes its
  next awaiting trail, or drains and resumes the emitter below (§2.2);
* **[seed] / [join] / [escape]** — with an empty run stack, the least
  agenda item dispatches: normal resumes first, then rejoin and escape
  continuations ordered outermost-last (§4.1).

Reactions (`boot` / `event:NAME` / `time` / `async:N`) drive the machine
exactly like the paper's four-entry C API; ``go_time`` partitions
coincident deadlines per arming epoch and compensates residual deltas
from the *logical* base (§2.3).  The recorded trace rows reuse the
:class:`repro.runtime.trace.Reaction` records, so ``signature()`` /
``portable_signature()`` are directly comparable against the VM and the
C backend in the differential harness (:mod:`repro.fuzz.oracles`).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Union

from ..lang import ast
from ..lang.errors import RuntimeCeuError
from ..lang.parser import parse
from ..runtime.cenv import CEnv
from ..runtime.eval import Evaluator
from ..runtime.memory import Memory
from ..runtime.trace import Reaction, Step
from ..runtime.values import as_int, truthy
from ..sema.binder import BoundProgram, bind
from ..sema.bounded import check_bounded
from ..sema.symbols import EventSymbol
from .config import (ALoopF, ASeqF, BreakSig, EmitF, ReturnSig, RunF, SeqF,
                     SpecEscape, SpecJob, SpecJoin, SpecTrail)
from .rules import CONTINUE, DEAD, EMIT, HALT, StatementRules


class Machine(StatementRules):
    """Executes one Céu program under the reference semantics."""

    def __init__(self, bound: BoundProgram, cenv: Optional[CEnv] = None,
                 transcript: bool = False, step_limit: int = 5_000_000):
        self.bound = bound
        self.memory = Memory()
        self.cenv = cenv if cenv is not None else CEnv()
        self.ev = Evaluator(bound, self.memory, self.cenv)

        self.clock = 0
        self.done = False
        self.result: Any = None
        self.steps_executed = 0
        self.step_limit = step_limit

        # configuration ⟨F, E, A, Θ, σ, t⟩
        self.live: list[SpecTrail] = []          # trail forest F
        self.run_stack: list = []                # pending-emit stack E (+ runner)
        self.agenda: list = []                   # agenda A
        #: timer residues Θ: (deadline, arming_base, computed, seq, trail)
        self.timers: list[tuple] = []
        self.ext_waiting: dict[str, list[SpecTrail]] = {}
        self.int_waiting: dict[str, list[SpecTrail]] = {}
        self.forever: list[SpecTrail] = []
        self.async_jobs: list[SpecJob] = []
        self.outputs: list[tuple[str, Any]] = []
        self.root: Optional[SpecTrail] = None

        self.reactions: list[Reaction] = []
        self._current: Optional[Reaction] = None
        self._current_base = 0
        self._steps_this_reaction = 0
        self._emit_depth = 0
        self._seq = itertools.count()
        self._region_seq = itertools.count(1)
        self._job_seq = itertools.count(1)
        self._transcript: Optional[list[str]] = [] if transcript else None

        self._depth = self._compute_depths()

    # ------------------------------------------------------------- prepass
    def _compute_depths(self) -> dict[int, int]:
        depth: dict[int, int] = {}

        def walk(node: ast.Node, d: int) -> None:
            depth[node.nid] = d
            nested = d + 1 if isinstance(
                node, (ast.ParStmt, ast.Loop, ast.DoBlock,
                       ast.AsyncBlock)) else d
            for child in node.children():
                walk(child, nested)

        walk(self.bound.program, 0)
        return depth

    def _depth_of(self, node: Optional[ast.Node]) -> int:
        if node is None:
            return 0
        return self._depth.get(node.nid, 0)

    # ----------------------------------------------------------- recording
    def _note(self, line: str) -> None:
        if self._transcript is not None:
            self._transcript.append(line)

    def _note_step(self, trail: SpecTrail, stmt: ast.Stmt) -> None:
        self.steps_executed += 1
        self._steps_this_reaction += 1
        if self._steps_this_reaction > self.step_limit:
            raise RuntimeCeuError(
                "reaction chain exceeded the step limit — unbounded "
                "execution (should have been caught by §2.5 analysis)")
        if self._current is not None:
            self._current.steps.append(
                Step(trail.label, trail.path, type(stmt).__name__,
                     stmt.span.start.line))
        self._note(f"[exec] {trail.label} "
                   f"{type(stmt).__name__}@{stmt.span.start.line}")

    def transcript(self) -> str:
        """The rule-application log (``Machine(..., transcript=True)``)."""
        return "\n".join(self._transcript or [])

    # ------------------------------------------------------------- driving
    def boot(self) -> None:
        """[boot]: the root trail enters the program body."""
        if self.root is not None:
            raise RuntimeCeuError("program already initialised")
        root = SpecTrail("main", ())
        root.frames.append(SeqF(self.bound.program.body.stmts))
        self.root = root
        self.live.append(root)
        self._react("boot", None,
                    lambda: self._enqueue_resume(root, ("start",)))
        self._drain()

    def send(self, name: str, value: Any = None) -> None:
        self.go_event(name, value)
        self._drain()

    def at(self, us: int) -> None:
        self.go_time(us)
        self._drain()

    def advance(self, us: int) -> None:
        self.at(self.clock + us)

    def _drain(self, max_async_steps: int = 10_000_000) -> None:
        steps = 0
        while not self.done and self.async_jobs:
            self.go_async()
            steps += 1
            if steps > max_async_steps:
                raise RuntimeCeuError("async budget exhausted — runaway "
                                      "asynchronous block?")

    # ----------------------------------------------------------- reactions
    def go_event(self, name: str, value: Any = None) -> None:
        """[event]: one reaction chain for one input occurrence."""
        if self.done:
            return
        sym = self.bound.events.get(name)
        if sym is None or sym.kind != "input":
            raise RuntimeCeuError(f"`{name}` is not a declared input event")

        def seed() -> None:
            waiting = self.ext_waiting.get(name, [])
            self.ext_waiting[name] = []
            for trail in waiting:
                if trail.alive:
                    self._enqueue_resume(trail, ("value", value))

        self._react(f"event:{name}", value, seed)

    def go_time(self, now: int) -> None:
        """[time]: advance the clock, one reaction per expiring logical
        deadline, coincidences partitioned per arming epoch (§2.3)."""
        if self.done:
            return
        if now < self.clock:
            raise RuntimeCeuError(
                f"time goes backwards ({now} < {self.clock})")
        self.clock = now
        while not self.done:
            deadline = self._next_deadline()
            if deadline is None or deadline > now:
                break
            due = [e for e in self.timers if e[0] == deadline]
            self.timers = [e for e in self.timers if e[0] != deadline]
            popped = [(computed, base, seq, trail)
                      for (_, base, computed, seq, trail) in due
                      if trail.alive and trail.waiting == "time"]
            # most recently armed epoch first, computed timeouts last
            popped.sort(key=lambda item: (item[0], -item[1], item[2]))
            parts: list[list[SpecTrail]] = []
            last_key: Optional[tuple] = None
            for computed, base, seq, trail in popped:
                key = (computed, base, seq if computed else -1)
                if key != last_key:
                    parts.append([])
                    last_key = key
                parts[-1].append(trail)
            delta = now - deadline
            for part in parts:
                if self.done:
                    break
                live = [t for t in part
                        if t.alive and t.waiting == "time"]
                if not live:
                    continue
                self._note(f"[timer-fire] deadline={deadline} "
                           f"delta={delta} trails={len(live)}")

                def seed(live=live, delta=delta) -> None:
                    for trail in live:
                        self._enqueue_resume(trail, ("value", delta))

                self._react("time", deadline, seed, base=deadline)

    def _next_deadline(self) -> Optional[int]:
        self.timers = [e for e in self.timers
                       if e[-1].alive and e[-1].waiting == "time"]
        if not self.timers:
            return None
        return min(e[0] for e in self.timers)

    def _react(self, trigger: str, value: Any, seed: Callable[[], None],
               base: Optional[int] = None) -> None:
        if self.done:
            return
        self._current_base = self.clock if base is None else base
        reaction = Reaction(len(self.reactions), trigger, value,
                            self._current_base)
        self.reactions.append(reaction)
        self._current = reaction
        self._steps_this_reaction = 0
        self._note(f"== reaction #{reaction.index} {trigger} "
                   f"@{self._current_base}us")
        seed()
        while not self.done and (self.run_stack or self.agenda):
            self.step_once()
        self.run_stack.clear()
        self.agenda.clear()
        if not reaction.steps:
            reaction.discarded = True
        self._current = None
        self._check_termination()

    # --------------------------------------------------------- the machine
    def step_once(self) -> None:
        """Apply one rule to the configuration."""
        if self.run_stack:
            top = self.run_stack[-1]
            if isinstance(top, EmitF):
                while top.queue:            # [emit-wake]
                    trail = top.queue.pop(0)
                    if trail.alive and trail.waiting == "int":
                        self._note(f"[emit-wake] {trail.label} "
                                   f"<- {top.name}")
                        self.run_stack.append(
                            RunF(trail, ("value", top.value)))
                        return
                self.run_stack.pop()        # [emit-pop]
                self._note(f"[emit-pop] {top.name} "
                           f"depth={self._emit_depth}")
                self._emit_depth -= 1
                return
            status = self._advance(top)     # [run]
            if status in (HALT, DEAD):
                if self.run_stack and self.run_stack[-1] is top:
                    self.run_stack.pop()
            return
        item = self._pop_agenda()
        if item is None:
            return
        kind, payload = item[2], item[3]
        if kind == "resume":                # [seed]
            trail, mode = payload
            if trail.alive:
                self.run_stack.append(RunF(trail, mode))
        elif kind == "join":                # [join]
            self._dispatch_join(payload)
        else:                               # [escape]
            self._dispatch_escape(payload)

    def _advance(self, runf: RunF) -> str:
        trail = runf.trail
        if not trail.alive:
            return DEAD
        pending = runf.pending
        if pending is not None:
            runf.pending = None
            trail.waiting = None
            trail.time_base = self._current_base
            kind = pending[0]
            if kind == "escape":
                return self._unwind(trail, pending[1])
            if kind in ("value", "done"):
                self._deliver(trail, pending[1])
        return self._step_trail(trail)

    # --------------------------------------------------------------- agenda
    def _enqueue_resume(self, trail: SpecTrail, mode: tuple) -> None:
        self.agenda.append(((0, 0), next(self._seq), "resume",
                            (trail, mode)))

    def _enqueue_join(self, join: SpecJoin) -> None:
        prio = (1, -self._depth_of(join.node))
        self.agenda.append((prio, next(self._seq), "join", join))

    def _enqueue_escape(self, trail: SpecTrail, sig) -> None:
        if isinstance(sig, BreakSig):
            target_depth = self._depth_of(sig.target)
        else:
            target_depth = self._depth_of(sig.boundary)
        prio = (1, -target_depth)
        self.agenda.append((prio, next(self._seq), "escape",
                            SpecEscape(trail, sig)))

    def _pop_agenda(self) -> Optional[tuple]:
        if not self.agenda:
            return None
        best = min(range(len(self.agenda)),
                   key=lambda i: (self.agenda[i][0], self.agenda[i][1]))
        return self.agenda.pop(best)

    def _dispatch_join(self, join: SpecJoin) -> None:
        if join.cancelled or not join.owner.alive:
            return
        mode = join.mode
        self._note(f"[join-{mode}] par@{join.node.span.start.line} "
                   f"-> {join.owner.label}")
        if mode == "or" or join.has_value:
            self._kill_region(join.region)
        value = join.value if join.has_value else 0
        self.run_stack.append(RunF(join.owner, ("done", value)))

    def _dispatch_escape(self, esc: SpecEscape) -> None:
        if esc.cancelled:
            return
        join = esc.trail.parent_join
        if join is None:  # pragma: no cover - guarded at enqueue time
            return
        self._note(f"[escape] {esc.trail.label} "
                   f"-> {join.owner.label}")
        self._kill_region(join.region)
        if join.owner.alive:
            self.run_stack.append(RunF(join.owner, ("escape", esc.signal)))

    # ------------------------------------------------------- trail lifecycle
    def _trail_completed(self, trail: SpecTrail) -> None:
        trail.alive = False
        if trail in self.live:
            self.live.remove(trail)
        join = trail.parent_join
        if join is None:
            return  # root trail finished; liveness check decides the rest
        if join.mode == "and":
            if join.branch_done(trail.branch_index):
                self._enqueue_join(join)
        elif join.mode == "or":
            join.branch_done(trail.branch_index)
            if not join.or_enqueued:
                join.or_enqueued = True
                self._enqueue_join(join)
        # plain `par` never rejoins: the trail simply dies

    def _trail_signal(self, trail: SpecTrail, sig) -> None:
        trail.alive = False
        if trail in self.live:
            self.live.remove(trail)
        join = trail.parent_join
        if join is None:
            if isinstance(sig, ReturnSig):
                self._terminate(sig.value)
                return
            raise RuntimeCeuError("`break` escaped the program")
        if isinstance(sig, ReturnSig) and sig.boundary is join.node:
            # `return` from a value-parallel completes the whole par
            if not join.has_value:
                join.has_value = True
                join.value = sig.value
            if not join.or_enqueued:
                join.or_enqueued = True
                self._enqueue_join(join)
            return
        self._enqueue_escape(trail, sig)

    # --------------------------------------------------------------- spawns
    def _exec_par(self, trail: SpecTrail, node: ast.ParStmt) -> str:
        self._spawn_par(node, trail)
        trail.waiting = "par"
        return HALT

    def _spawn_par(self, node: ast.ParStmt, owner: SpecTrail) -> SpecJoin:
        region = owner.path + (next(self._region_seq),)
        join = SpecJoin(node=node, mode=node.mode, owner=owner,
                        region=region, depth=self._depth_of(node),
                        n_branches=len(node.blocks))
        for i, block in enumerate(node.blocks):
            label = f"{owner.label}.{i + 1}" if owner.label != "main" \
                else f"trail{i + 1}"
            child = SpecTrail(label, region + (i,), parent_join=join,
                              branch_index=i)
            child.frames.append(SeqF(block.stmts))
            self.live.append(child)
            self._note(f"[par-spawn] {label}")
            self._enqueue_resume(child, ("start",))
        return join

    def _exec_async(self, trail: SpecTrail, node: ast.AsyncBlock) -> str:
        job = SpecJob(next(self._job_seq), node, trail)
        self.async_jobs.append(job)
        trail.waiting = "async"
        self._note(f"[async-spawn] job={job.seq}")
        return HALT

    # -------------------------------------------------------------- regions
    def _kill_region(self, prefix: tuple) -> None:
        victims = [t for t in self.live if t.in_region(prefix)]
        if victims:
            self._note(f"[region-kill] {prefix} {len(victims)} trail(s)")
        for trail in victims:
            trail.alive = False
            self.live.remove(trail)
        if self.async_jobs:
            kept = []
            for job in self.async_jobs:
                if job.in_region(prefix):
                    job.aborted = True
                else:
                    kept.append(job)
            self.async_jobs = kept
        for item in self.agenda:
            kind, payload = item[2], item[3]
            if kind == "escape" and payload.trail.in_region(prefix):
                payload.cancelled = True
            elif kind == "join" and payload.owner.in_region(prefix):
                payload.cancelled = True

    # ------------------------------------------------------ internal events
    def _emit_internal(self, sym: EventSymbol, value: Any,
                       trail: SpecTrail) -> str:
        self._emit_depth += 1
        if self._current is not None:
            self._current.emitted_internal.append(sym.name)
        waiting = self.int_waiting.get(sym.name)
        if not waiting:
            self._note(f"[emit-skip] {sym.name} by {trail.label} "
                       f"(no one awaiting)")
            self._emit_depth -= 1
            return CONTINUE
        self.int_waiting[sym.name] = []
        self._note(f"[emit-push] {sym.name} depth={self._emit_depth} "
                   f"by {trail.label} ({len(waiting)} waiting)")
        self.run_stack.append(EmitF(sym.name, value, list(waiting)))
        return EMIT

    # ---------------------------------------------------------------- timers
    def _arm_timer(self, trail: SpecTrail, us: int, computed: int) -> None:
        if us < 0:
            raise RuntimeCeuError("negative timeout")
        base = trail.time_base               # §2.3 delta compensation
        deadline = base + us
        self.timers.append((deadline, base, computed, next(self._seq),
                            trail))
        trail.waiting = "time"
        self._note(f"[timer-arm] {trail.label} deadline={deadline} "
                   f"base={base}")

    # ---------------------------------------------------------------- asyncs
    def go_async(self) -> None:
        """[async]: one loop iteration or one emit of the current job,
        round-robin across jobs (§4.5)."""
        if self.done:
            return
        job = self._next_job()
        if job is None:
            return
        req = self._step_job(job)
        kind = req[0]
        if kind == "done":
            self._complete_async(job, req[1])
            return
        self._note(f"[async-step] job={job.seq} {kind}")
        if kind == "emit_ext":
            _, sym, value = req
            if not job.aborted:
                self.go_event(sym.name, value)
        elif kind == "emit_time":
            if not job.aborted:
                self.go_time(self.clock + req[1])
        # "tick": nothing — one loop iteration consumed
        if not job.aborted and not job.done:
            self._rotate_job(job)

    def _next_job(self) -> Optional[SpecJob]:
        while self.async_jobs:
            job = self.async_jobs[0]
            if job.aborted or job.done:
                self.async_jobs.pop(0)
                continue
            return job
        return None

    def _rotate_job(self, job: SpecJob) -> None:
        if self.async_jobs and self.async_jobs[0] is job:
            self.async_jobs.append(self.async_jobs.pop(0))

    def _complete_async(self, job: SpecJob, value: Any) -> None:
        job.done = True
        job.result = value
        if self.async_jobs and self.async_jobs[0] is job:
            self.async_jobs.pop(0)
        if job.aborted or not job.owner.alive:
            return
        self._note(f"[async-done] job={job.seq}")
        self._react(f"async:{job.seq}", value,
                    lambda: self._enqueue_resume(job.owner,
                                                 ("value", value)))

    def _step_job(self, job: SpecJob) -> tuple:
        """Run one async job to its next yield point."""
        while True:
            if not job.frames:
                return ("done", None)
            top = job.frames[-1]
            if isinstance(top, ASeqF):
                if top.i >= len(top.stmts):
                    job.frames.pop()
                    if job.frames and isinstance(job.frames[-1], ALoopF):
                        job.frames[-1].restart = True
                        return ("tick",)     # one iteration per step
                    continue
                stmt = top.stmts[top.i]
                top.i += 1
                req = self._async_stmt(job, stmt)
                if req is not None:
                    return req
                continue
            if isinstance(top, ALoopF):
                top.restart = False
                job.frames.append(ASeqF(top.node.body.stmts))
                continue
            raise RuntimeCeuError(  # pragma: no cover - machine invariant
                f"semantics: bad async frame {type(top).__name__}")

    def _async_stmt(self, job: SpecJob, s: ast.Stmt) -> Optional[tuple]:
        if isinstance(s, (ast.Nothing, ast.PureDecl, ast.DeterministicDecl,
                          ast.CBlockStmt)):
            return None
        if isinstance(s, ast.DeclVar):
            for declarator in s.decls:
                sym = self.bound.sym_of_decl[declarator.nid]
                if declarator.init is None:
                    self.memory.declare(sym)
                elif isinstance(declarator.init, ast.Exp):
                    self.memory.write(sym, self.ev.eval(declarator.init))
                else:
                    raise RuntimeCeuError(
                        "async declarations take plain expressions",
                        declarator.span)
            return None
        if isinstance(s, ast.EmitExt):
            sym = self.bound.event_of[s.nid]
            value = None if s.value is None else self.ev.eval(s.value)
            return ("emit_ext", sym, value)
        if isinstance(s, ast.EmitTime):
            return ("emit_time", s.time.us)
        if isinstance(s, ast.If):
            if truthy(self.ev.eval(s.cond)):
                job.frames.append(ASeqF(s.then.stmts))
            elif s.orelse is not None:
                job.frames.append(ASeqF(s.orelse.stmts))
            return None
        if isinstance(s, ast.Loop):
            job.frames.append(ALoopF(s))
            job.frames.append(ASeqF(s.body.stmts))
            return None
        if isinstance(s, ast.Break):
            target = self.bound.break_target[s.nid]
            while job.frames:
                frame = job.frames.pop()
                if isinstance(frame, ALoopF) and frame.node is target:
                    return None
            raise RuntimeCeuError("`break` escaped the async block",
                                  s.span)
        if isinstance(s, ast.Return):
            boundary = self.bound.ret_boundary.get(s.nid)
            value = None if s.value is None else self.ev.eval(s.value)
            if boundary is job.node:
                job.frames.clear()
                return ("done", value)
            raise RuntimeCeuError(
                "`return` inside `async` must target the async block",
                s.span)
        if isinstance(s, ast.CCallStmt):
            self.ev.call(s.call)
            return None
        if isinstance(s, ast.CallStmt):
            self.ev.eval(s.exp)
            return None
        if isinstance(s, ast.Assign):
            if not isinstance(s.value, ast.Exp):
                raise RuntimeCeuError("async assignments take plain "
                                      "expressions", s.span)
            self.ev.assign(s.target, self.ev.eval(s.value))
            return None
        if isinstance(s, ast.DoBlock):
            job.frames.append(ASeqF(s.body.stmts))
            return None
        raise RuntimeCeuError(
            f"statement {type(s).__name__} is not allowed inside `async`",
            s.span)

    # ---------------------------------------------------------- termination
    def _terminate(self, value: Any) -> None:
        self.done = True
        self.result = value
        self._note(f"[terminate] result={value!r}")
        self.agenda.clear()
        for trail in self.live:
            trail.alive = False
        self.live.clear()
        self.ext_waiting.clear()
        self.int_waiting.clear()
        self.forever.clear()
        self.timers.clear()
        for job in self.async_jobs:
            job.aborted = True
        self.async_jobs.clear()

    def awaiting_count(self) -> int:
        ext = sum(1 for lst in self.ext_waiting.values()
                  for t in lst if t.alive)
        internal = sum(1 for lst in self.int_waiting.values()
                       for t in lst if t.alive)
        # from the live set, not the timer list — go_time pops every
        # same-deadline entry before running the per-epoch partitions,
        # and a later partition's trail must still count as awaiting
        timers = sum(1 for t in self.live
                     if t.alive and t.waiting == "time")
        forever = sum(1 for t in self.forever if t.alive)
        return ext + internal + timers + forever

    def _check_termination(self) -> None:
        if self.done:
            return
        if self.awaiting_count() == 0 and not self.async_jobs:
            self.done = True
            self._note("[quiesce] nothing left awaiting")

    # ------------------------------------------------------------ reporting
    def output(self) -> str:
        return self.cenv.output()

    def memory_snapshot(self) -> dict:
        return self.memory.snapshot()

    def render(self) -> str:
        return "\n".join(str(r) for r in self.reactions)

    def signature(self) -> tuple:
        """Trace-compatible full signature (see
        :meth:`repro.runtime.trace.Trace.signature`)."""
        return tuple(
            (r.trigger,
             tuple((s.trail, s.kind, s.line) for s in r.steps),
             tuple(r.emitted_internal))
            for r in self.reactions)

    def portable_signature(self) -> tuple:
        """The cross-backend projection (VM ↔ C ↔ semantics)."""
        return tuple(
            (r.trigger, tuple(r.emitted_internal))
            for r in self.reactions
            if not r.trigger.startswith("async:"))


def run_script(source: Union[str, ast.Program, BoundProgram],
               script: list, transcript: bool = False,
               check: bool = True, cenv: Optional[CEnv] = None) -> Machine:
    """Run one (program, script) pair under the reference semantics.

    ``script`` is the fuzz/witness format: ``("E", name, value)`` input
    occurrences and ``("T", abs_us)`` clock advances.  Returns the
    machine, whose ``signature()`` / ``portable_signature()`` /
    ``done`` / ``result`` / ``output()`` plug straight into the
    differential harness (:mod:`repro.fuzz.oracles`).
    """
    if isinstance(source, str):
        bound = bind(parse(source))
    elif isinstance(source, ast.Program):
        bound = bind(source)
    else:
        bound = source
    if check:
        check_bounded(bound)
    machine = Machine(bound, cenv=cenv, transcript=transcript)
    machine.boot()
    for item in script:
        if machine.done:
            break
        if item[0] == "E":
            machine.send(item[1], item[2])
        else:
            machine.at(item[1])
    return machine


# re-exported for the rules mixin's type checkers
_ = (as_int, truthy)
