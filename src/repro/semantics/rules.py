"""Statement-level small-step rules of the reference semantics.

Each rule advances one trail by **one statement** (or one control
transition) and returns the trail's new status:

* ``"continue"`` — the trail is still runnable (more zero-time work);
* ``"halt"``     — the trail suspended (await / par / async / forever);
* ``"emit"``     — the statement pushed a pending-emit frame; the trail
  stays suspended *under* it until the emission drains (§2.2);
* ``"dead"``     — the trail completed or escaped out of its root.

The rule names in the golden transcripts (``[exec]``, ``[emit-push]``,
``[loop]``, ``[escape]``, …) map to the notation of docs/SEMANTICS.md.
"""

from __future__ import annotations

from typing import Any

from ..lang import ast
from ..lang.errors import RuntimeCeuError
from ..runtime.values import as_int, truthy
from .config import (BindF, BoundaryF, BreakSig, DeclF, LoopF, ReturnSig,
                     SeqF, SpecTrail)

CONTINUE = "continue"
HALT = "halt"
EMIT = "emit"
DEAD = "dead"

#: statements with no control effect — [exec-pure]
_PURE = (ast.Nothing, ast.DeclEvent, ast.PureDecl, ast.DeterministicDecl,
         ast.CBlockStmt)
_AWAITS = (ast.AwaitExt, ast.AwaitInt, ast.AwaitTime, ast.AwaitExp,
           ast.AwaitForever)
_SET_AWAITS = (ast.AwaitExt, ast.AwaitInt, ast.AwaitTime, ast.AwaitExp)


class StatementRules:
    """Mixin over :class:`repro.semantics.machine.Machine` holding the
    per-statement transition rules.  The machine supplies the store
    (``self.ev`` / ``self.memory``), the registries, and the recording
    hooks (``_note_step`` / ``_note``)."""

    # ----------------------------------------------------------- stepping
    def _step_trail(self, trail: SpecTrail) -> str:
        """Apply one control rule to ``trail``."""
        guard = 0
        while True:
            guard += 1
            if guard > 10_000:  # pragma: no cover - bounded check backstop
                raise RuntimeCeuError(
                    "semantics: control transition did not reach a "
                    "statement (await-free loop?)")
            if not trail.frames:
                self._trail_completed(trail)
                return DEAD
            top = trail.frames[-1]
            if isinstance(top, SeqF):
                if top.i >= len(top.stmts):
                    trail.frames.pop()
                    status = self._fallthrough(trail)
                    if status is not None:
                        return status
                    continue
                stmt = top.stmts[top.i]
                top.i += 1
                return self._exec_stmt(trail, stmt)
            if isinstance(top, DeclF):
                status = self._decl_step(trail, top)
                if status is not None:
                    return status
                continue
            raise RuntimeCeuError(  # pragma: no cover - machine invariant
                f"semantics: unexpected top frame {type(top).__name__}")

    def _fallthrough(self, trail: SpecTrail):
        """A block ran dry — resolve the construct it belonged to."""
        if not trail.frames:
            return None                      # trail root: completion
        top = trail.frames[-1]
        if isinstance(top, LoopF):           # [loop-again]
            trail.frames.append(SeqF(top.node.body.stmts))
            return None
        if isinstance(top, BoundaryF):       # [do-fall]: value 0
            trail.frames.pop()
            self._deliver(trail, 0)
            return None
        return None                          # DeclF / BindF: keep going

    def _decl_step(self, trail: SpecTrail, declf: DeclF):
        """Process one declarator of a ``DeclVar`` — [decl]."""
        if declf.i >= len(declf.stmt.decls):
            trail.frames.pop()
            return None
        declarator = declf.stmt.decls[declf.i]
        declf.i += 1
        sym = self.bound.sym_of_decl[declarator.nid]
        if declarator.init is None:
            self.memory.declare(sym)
            return None
        if isinstance(declarator.init, ast.Exp):
            self.memory.write(sym, self.ev.eval(declarator.init))
            return None
        trail.frames.append(BindF("decl", sym))
        return self._start_setexp(trail, declarator.init)

    # ------------------------------------------------------- value plumbing
    def _deliver(self, trail: SpecTrail, value: Any) -> None:
        """A value arrived at the trail's program point — [bind] if a
        destination is pending, discarded otherwise."""
        if trail.frames and isinstance(trail.frames[-1], BindF):
            bindf = trail.frames.pop()
            if bindf.kind == "assign":
                self.ev.assign(bindf.payload, value)
            else:                            # "decl"
                self.memory.write(bindf.payload, value)

    def _start_setexp(self, trail: SpecTrail, node: ast.Node) -> str:
        """Begin a statement-valued right-hand side (mirrors the VM's
        ``exec_setexp``: the inner construct itself records no step)."""
        if isinstance(node, _SET_AWAITS):
            return self._exec_await(trail, node)
        if isinstance(node, ast.DoBlock):
            if node.nid in self.bound.value_boundaries:
                trail.frames.append(BoundaryF(node))
            trail.frames.append(SeqF(node.body.stmts))
            return CONTINUE
        if isinstance(node, ast.ParStmt):
            return self._exec_par(trail, node)
        if isinstance(node, ast.AsyncBlock):
            return self._exec_async(trail, node)
        raise RuntimeCeuError("invalid right-hand side", node.span)

    # ----------------------------------------------------------- statements
    def _exec_stmt(self, trail: SpecTrail, s: ast.Stmt) -> str:
        self._note_step(trail, s)
        if isinstance(s, _PURE):
            return CONTINUE
        if isinstance(s, ast.DeclVar):
            trail.frames.append(DeclF(s))
            return CONTINUE
        if isinstance(s, _AWAITS):
            return self._exec_await(trail, s)
        if isinstance(s, ast.EmitInt):       # [emit-push] / [emit-skip]
            value = None if s.value is None else self.ev.eval(s.value)
            return self._emit_internal(self.bound.event_of[s.nid], value,
                                       trail)
        if isinstance(s, ast.EmitExt):       # [emit-out]
            value = None if s.value is None else self.ev.eval(s.value)
            self.outputs.append((self.bound.event_of[s.nid].name, value))
            return CONTINUE
        if isinstance(s, ast.If):            # [if]
            if truthy(self.ev.eval(s.cond)):
                trail.frames.append(SeqF(s.then.stmts))
            elif s.orelse is not None:
                trail.frames.append(SeqF(s.orelse.stmts))
            return CONTINUE
        if isinstance(s, ast.Loop):          # [loop-enter]
            trail.frames.append(LoopF(s))
            trail.frames.append(SeqF(s.body.stmts))
            return CONTINUE
        if isinstance(s, ast.Break):         # [break]
            return self._unwind(trail,
                                BreakSig(self.bound.break_target[s.nid]))
        if isinstance(s, ast.Return):        # [return]
            value = None if s.value is None else self.ev.eval(s.value)
            return self._unwind(
                trail, ReturnSig(self.bound.ret_boundary.get(s.nid), value))
        if isinstance(s, ast.ParStmt):       # [par-spawn]
            return self._exec_par(trail, s)
        if isinstance(s, ast.CCallStmt):     # [c-call]
            self.ev.call(s.call)
            return CONTINUE
        if isinstance(s, ast.CallStmt):
            self.ev.eval(s.exp)
            return CONTINUE
        if isinstance(s, ast.Assign):        # [assign]
            if isinstance(s.value, ast.Exp):
                self.ev.assign(s.target, self.ev.eval(s.value))
                return CONTINUE
            trail.frames.append(BindF("assign", s.target))
            return self._start_setexp(trail, s.value)
        if isinstance(s, ast.DoBlock):       # [do-enter]
            if s.nid in self.bound.value_boundaries:
                trail.frames.append(BoundaryF(s))
            trail.frames.append(SeqF(s.body.stmts))
            return CONTINUE
        if isinstance(s, ast.AsyncBlock):    # [async-spawn]
            return self._exec_async(trail, s)
        raise RuntimeCeuError(f"unhandled statement {type(s).__name__}",
                              s.span)

    # --------------------------------------------------------------- awaits
    def _exec_await(self, trail: SpecTrail, s: ast.Stmt) -> str:
        if isinstance(s, ast.AwaitExt):      # [await-ext]
            sym = self.bound.event_of[s.nid]
            self.ext_waiting.setdefault(sym.name, []).append(trail)
            trail.waiting = "ext"
            return HALT
        if isinstance(s, ast.AwaitInt):      # [await-int]
            sym = self.bound.event_of[s.nid]
            self.int_waiting.setdefault(sym.name, []).append(trail)
            trail.waiting = "int"
            return HALT
        if isinstance(s, ast.AwaitTime):     # [timer-arm]
            self._arm_timer(trail, s.time.us, computed=0)
            return HALT
        if isinstance(s, ast.AwaitExp):      # [timer-arm] (computed)
            us = as_int(self.ev.eval(s.exp), "await timeout")
            self._arm_timer(trail, us, computed=1)
            return HALT
        if isinstance(s, ast.AwaitForever):  # [await-forever]
            self.forever.append(trail)
            trail.waiting = "forever"
            return HALT
        raise RuntimeCeuError("bad await", s.span)

    # ------------------------------------------------------------ unwinding
    def _unwind(self, trail: SpecTrail, sig) -> str:
        """Pop frames until the signal's target construct — or escape
        out of the trail root ([escape-par] / [terminate])."""
        while trail.frames:
            frame = trail.frames.pop()
            if (isinstance(frame, LoopF) and isinstance(sig, BreakSig)
                    and frame.node is sig.target):
                self._note(f"[break] -> loop@"
                           f"{frame.node.span.start.line}")
                return CONTINUE
            if (isinstance(frame, BoundaryF) and isinstance(sig, ReturnSig)
                    and frame.node is sig.boundary):
                self._deliver(trail, sig.value)
                return CONTINUE
        self._trail_signal(trail, sig)
        return DEAD
