"""Command-line interface: ``python -m repro <command> <file.ceu>``.

Commands mirror what the original `ceu` compiler offered plus the
reproduction's analysis artifacts:

=========  ==============================================================
``check``   run all static analyses, accumulating *every* diagnostic
            (file:line:col on stderr); exit non-zero iff any
            error-severity finding
``lint``    the full analysis engine over one or more files —
            conflicts with replayable witnesses, liveness, deadlock,
            static resource bounds — as text, JSON, or SARIF 2.1.0
            (docs/ANALYSIS.md)
``run``     execute on the reference VM, feeding events/time from
            positional inputs or a ``--inputs`` script file; ``--trace``
            prints the reaction trace, ``--trace-json``/``--trace-jsonl``
            export a Perfetto-loadable Chrome trace (with causal flow
            arrows) / machine-readable JSONL, ``--stats`` prints the
            metrics snapshot, and ``--flight-recorder N`` dumps the last
            N hook events if the run crashes
``why``     replay a program against a stimulus script and print the
            *causal slice* of a target occurrence — the exact chain of
            resumes/emits/timer fires that led to it
            (docs/OBSERVABILITY.md); ``--diff`` replays a second
            configuration and diffs the two slices (the bisect aid
            across a semantic divergence)
``debug``   time-travel debugger: replay deterministically, pause at any
            reaction boundary, inspect memory/trails, step forward *and
            backward* (``step``/``back``/``goto N``/``state``/``why``);
            ``goto`` replays from the nearest parked checkpoint —
            O(distance), not O(run) (``checkpoints`` shows the ring,
            ``save``/``load`` and ``--from-checkpoint`` persist and
            reopen a session)
``postmortem`` inspect a black-box bundle captured by the farm watchdog
            or ``run --postmortem``: summary + causal slice +
            flight-recorder tail, ``--debug`` to replay it in the
            time-travel REPL, ``--why TARGET`` for a causal slice at
            the captured boundary
``profile`` run with full instrumentation and print the metrics report
            (``--json`` writes the raw snapshot)
``c``       emit the §4.4 C translation to stdout (or ``-o``);
            ``--static-bounds`` embeds the DFA-derived capacity bounds
            as ``_Static_assert``-checked constants
``dot``     emit the flow graph (``--flow``) or the temporal-analysis DFA
            (default) as graphviz text
``layout``  print the static memory layout and gate table
``fuzz``    conformance fuzzing: generate seeded programs and cross-check
            the VM, the C backend, replay determinism, schedule
            independence, and the static bounds against each other
            (docs/FUZZING.md); ``--shrink`` minimises failures,
            ``--guided`` turns on coverage-guided seed scheduling,
            ``--oracle semantics`` adds the executable reference
            semantics as a third backend (three-way VM↔C↔spec diff)
``bench``   benchmark snapshot (throughput, overhead ratios, latency
            percentiles) as ``benchmarks/BENCH_<stamp>.json``; ``--check``
            gates against the committed baseline; ``--farm`` also measures
            the reactor farm and records ``benchmarks/BENCH_farm.json``
``farm``    run N instances of one program over the DES kernel with fleet
            telemetry: per-instance metrics rolled up cross-instance
            (``--stats``), Prometheus text exposition (``--prom``),
            shared JSONL telemetry stream (``--jsonl``), and a
            reaction-latency watchdog (docs/OBSERVABILITY.md);
            ``--serve HOST:PORT`` keeps the fleet on a wall-clock driver
            and serves the live telemetry plane (``/metrics``,
            ``/healthz``, ``/readyz``, ``/snapshot``, ``/events``,
            ``/flamegraph``, plus ``POST /checkpoint`` and
            ``/postmortems`` with ``--record``/``--postmortem-dir``)
            with graceful SIGTERM drain
``top``     live ANSI dashboard over a fleet — reactions/s, latency
            percentiles, watchdog verdicts, per-shard table — against an
            in-process farm (pass a ``.ceu`` file) or a remote
            ``--serve`` URL
``federate`` scrape N shard ``/snapshot`` endpoints and roll them into
            one exposition with per-shard ``shard_up``/staleness
            metrics; ``--once`` prints to stdout, ``--serve`` re-serves
            the merged plane
=========   =============================================================
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import json

from .codegen import HOST, TARGET16, build_gates, build_layout, compile_to_c
from .core import analyze
from .dfa import build_dfa
from .flow import build_flow
from .lang import parse
from .lang.errors import CeuError
from .obs import ChromeTraceExporter, JsonlExporter, render_stats
from .runtime import Program
from .runtime.program import parse_time
from .sema import bind, check_bounded


def _load(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def cmd_check(args) -> int:
    """All analyses, all findings — not just the first (docs/ANALYSIS.md)."""
    from .analysis import run_analysis

    source = _load(args.file)
    report = run_analysis(source, filename=args.file,
                          max_states=args.max_states)
    for diag in report.sorted():
        print(diag.render(), file=sys.stderr)
    conflicts = [d for d in report.errors if d.code.startswith("CEU-E2")]
    if conflicts:
        print(f"{args.file}: nondeterminism: {len(conflicts)} "
              f"conflict(s) — witnesses above replay via `repro run`",
              file=sys.stderr)
    if report.exit_code:
        return 1
    if "dfa" not in report.stages:
        return 1  # analysis budget exceeded (CEU-W401 above)
    unit = analyze(source, filename=args.file,
                   max_states=args.max_states)
    layout = unit.memory_layout(TARGET16)
    gates = unit.gate_table()
    print(f"{args.file}: deterministic")
    print(f"  events   : {len(unit.bound.events)}")
    print(f"  variables: {len(unit.bound.variables)} "
          f"({layout.total} bytes static memory)")
    print(f"  gates    : {gates.count}")
    print(f"  dfa      : {report.dfa_states} states, "
          f"{report.dfa_transitions} transitions")
    if report.bounds is not None:
        print(f"  bounds   : {report.bounds.summary()}")
    return 0


def _changed_lines(base: str, new: str) -> set:
    """1-based line numbers of ``new`` outside any equal block vs
    ``base`` (the `--diff-base` filter)."""
    import difflib

    base_lines = base.splitlines(keepends=True)
    new_lines = new.splitlines(keepends=True)
    matcher = difflib.SequenceMatcher(None, base_lines, new_lines,
                                      autojunk=False)
    same = set()
    for _a, b, size in matcher.get_matching_blocks():
        same.update(range(b + 1, b + size + 1))
    return set(range(1, len(new_lines) + 1)) - same


def cmd_lint(args) -> int:
    from .analysis import IncrementalAnalyzer, run_analysis, sarif_json

    reports = []
    for path in args.files:
        source = _load(path)
        if args.incremental:
            analyzer = IncrementalAnalyzer(
                filename=path, max_states=args.max_states,
                witnesses=not args.no_witness,
                verify_witnesses=not args.no_verify)
            report = analyzer.analyze(source)
        else:
            report = run_analysis(
                source, filename=path, max_states=args.max_states,
                witnesses=not args.no_witness,
                verify_witnesses=not args.no_verify)
        if args.diff_base:
            changed = _changed_lines(_load(args.diff_base), source)
            report.diagnostics = [d for d in report.diagnostics
                                  if d.span.start.line in changed]
        reports.append(report)
    if args.format == "sarif":
        text = sarif_json(reports)
    elif args.format == "json":
        payload = [r.to_dict() for r in reports]
        text = json.dumps(payload[0] if len(payload) == 1 else payload,
                          indent=2) + "\n"
    else:
        text = "\n".join(r.render_text() for r in reports) + "\n"
    if args.output:
        Path(args.output).write_text(text)
        total = sum(len(r.diagnostics) for r in reports)
        print(f"wrote {args.output}: {len(reports)} file(s), "
              f"{total} finding(s)", file=sys.stderr)
    else:
        sys.stdout.write(text)
    if args.strict and any(r.errors for r in reports):
        return 1
    return 0


def cmd_lsp(args) -> int:
    from .lsp import main as lsp_main

    return lsp_main()


def _feed_inputs(program: Program, inputs) -> None:
    """Drive a booted program from CLI input arguments."""
    for item in inputs or []:
        if program.done:
            break
        if item.startswith("@"):
            program.at(parse_time(item[1:]))
        elif "=" in item:
            name, value = item.split("=", 1)
            program.send(name, int(value))
        else:
            program.send(item)


def _load_script(path: str) -> list:
    from .fuzz.gen import parse_script_text

    return parse_script_text(_load(path))


def _feed_script(program: Program, script) -> None:
    """Drive a booted program from fuzz-format script items."""
    for item in script:
        if program.done or program.sched.paused():
            break
        if item[0] == "E":
            program.send(item[1], item[2])
        else:
            program.at(item[1])


def _crash_bundle(program: Program, source: str, args, recorder,
                  err: BaseException) -> Path:
    """Write the black-box bundle for a crashed ``repro run``: a crash
    checkpoint (parked one reaction short of the failing one), the
    flight-recorder ring when one was on, and the error itself."""
    from .runtime.checkpoint import snapshot_crash, write_postmortem

    ck = snapshot_crash(program, source=source, filename=args.file)
    directory = Path(args.postmortem)
    directory.mkdir(parents=True, exist_ok=True)
    stem = Path(args.file).stem or "prog"
    bundle = directory / f"{stem}-crash-r{ck.reaction_count}"
    n = 0
    while bundle.exists():
        n += 1
        bundle = directory / f"{stem}-crash-r{ck.reaction_count}.{n}"
    write_postmortem(
        bundle, ck, reason="exception",
        recorder_lines=recorder.lines() if recorder is not None else None,
        detail={"error": repr(err)})
    return bundle


def cmd_run(args) -> int:
    from contextlib import nullcontext

    source = _load(args.file)
    program = Program(source, filename=args.file, trace=args.trace,
                      observe=args.stats or bool(args.prom),
                      record=bool(args.postmortem))
    chrome = jsonl = recorder = None
    if args.trace_json:
        chrome = program.observe(
            ChromeTraceExporter(flows_from=program.hooks))
    if args.trace_jsonl:
        jsonl = program.observe(JsonlExporter())
    guard = nullcontext()
    if args.flight_recorder:
        from .obs import FlightRecorder

        recorder = program.observe(FlightRecorder(args.flight_recorder))
        guard = recorder.dump_on_exception()
    try:
        with guard:
            program.start()
            if args.inputs_file:
                _feed_script(program, _load_script(args.inputs_file))
            _feed_inputs(program, args.inputs)
    except BaseException as err:
        if args.postmortem:
            bundle = _crash_bundle(program, source, args, recorder, err)
            print(f"wrote postmortem bundle {bundle} (open with "
                  f"`repro postmortem {bundle}`)", file=sys.stderr)
        raise
    sys.stdout.write(program.output())
    if args.trace:
        print("--- trace ---", file=sys.stderr)
        print(program.trace.render(), file=sys.stderr)
    if chrome is not None:
        chrome.write(args.trace_json)
        print(f"wrote {args.trace_json}: {len(chrome.events)} trace "
              f"events (load at https://ui.perfetto.dev)", file=sys.stderr)
    if jsonl is not None:
        jsonl.write(args.trace_jsonl)
        print(f"wrote {args.trace_jsonl}: {len(jsonl.records)} events",
              file=sys.stderr)
    if args.stats:
        print("--- stats ---", file=sys.stderr)
        print(render_stats(program.stats()), file=sys.stderr)
    if args.prom:
        from .obs import write_prom

        n = write_prom(program.stats(), args.prom)
        print(f"wrote {args.prom}: {n} exposition lines",
              file=sys.stderr)
    if program.done:
        print(f"terminated, result = {program.result}", file=sys.stderr)
        return 0
    print("awaiting further input", file=sys.stderr)
    return 0


def cmd_profile(args) -> int:
    from .obs import Profiler, StreamingJsonlExporter

    source = _load(args.file)
    program = Program(source, filename=args.file, observe=True)
    chrome = stream = profiler = None
    if args.trace_json:
        chrome = program.observe(
            ChromeTraceExporter(flows_from=program.hooks))
    if args.stream:
        stream = program.observe(
            StreamingJsonlExporter(args.stream, flush_every=1024))
    if args.hot is not None or args.flamegraph:
        profiler = program.observe(Profiler(source=source))
    program.start()
    _feed_inputs(program, args.inputs)
    stats = program.stats()
    print(render_stats(stats))
    if profiler is not None and args.hot is not None:
        print(profiler.report(k=args.hot))
    if chrome is not None:
        chrome.write(args.trace_json)
        print(f"wrote {args.trace_json}: {len(chrome.events)} trace "
              f"events (load at https://ui.perfetto.dev)", file=sys.stderr)
    if stream is not None:
        stream.close()
        print(f"wrote {args.stream}: {stream.seq} events streamed "
              f"(resident high {stream.resident_high})", file=sys.stderr)
    if profiler is not None and args.flamegraph:
        n = profiler.write_collapsed(args.flamegraph)
        print(f"wrote {args.flamegraph}: {n} collapsed stacks "
              f"(flamegraph.pl / speedscope format)", file=sys.stderr)
    if args.json:
        Path(args.json).write_text(json.dumps(stats, indent=2,
                                              default=repr) + "\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _causal_replay(path: str, inputs_file, inputs,
                   reverse_seeds: bool = False):
    """One instrumented replay; returns ``(program, causal_graph)``."""
    from .obs import CausalGraph

    source = _load(path)
    program = Program(source, filename=path,
                      reverse_seeds=reverse_seeds)
    graph = program.observe(CausalGraph(program.hooks))
    program.start()
    if inputs_file:
        _feed_script(program, _load_script(inputs_file))
    _feed_inputs(program, inputs)
    return program, graph


def cmd_why(args) -> int:
    """Causal slice of one occurrence: replay, find, print ancestry.

    With ``--diff``, replay a *second* configuration (another program
    revision via ``--diff-file``, another stimulus via ``--diff-inputs``,
    or the flipped seeding order via ``--diff-reverse-seeds``) and print
    a unified diff of the two causal slices — the bisect aid when the
    differential oracles disagree: the first diverging line is where the
    two histories fork.
    """
    _program, graph = _causal_replay(args.file, args.inputs_file,
                                     args.inputs)
    node = graph.find(args.at)
    if node is None:
        print(graph.why(args.at), file=sys.stderr)
        return 1
    if not args.diff:
        print(f"causal slice of [{node.span}] {node.describe()} "
              f"(reaction #{node.reaction}):")
        print(graph.render_slice(node.span, steps=args.steps))
        return 0
    from .obs import diff_slices

    other_file = args.diff_file or args.file
    other_inputs = args.diff_inputs_file or args.inputs_file
    _program2, graph2 = _causal_replay(
        other_file, other_inputs, args.inputs,
        reverse_seeds=args.diff_reverse_seeds)
    other_at = args.diff_at or args.at
    node2 = graph2.find(other_at)
    if node2 is None:
        print(graph2.why(other_at), file=sys.stderr)
        return 1
    label_a = f"a: {args.file} --at {args.at}"
    label_b = f"b: {other_file} --at {other_at}" + \
        (" (reverse seeds)" if args.diff_reverse_seeds else "")
    text = diff_slices(graph, node.span, graph2, node2.span,
                       steps=args.steps, label_a=label_a,
                       label_b=label_b)
    if not text:
        print(f"slices identical ({label_a} vs {label_b})")
        return 0
    print(f"causal slices diverge ({node.describe()} vs "
          f"{node2.describe()}):")
    print(text)
    return 1


def _debug_repl(dbg, label: str) -> int:
    """The time-travel REPL loop shared by ``repro debug`` and
    ``repro postmortem --debug``."""
    from .obs import TimeTravelDebugger
    from .runtime.checkpoint import CheckpointError

    print(f"{label}: {dbg.total} reaction(s) replayed "
          f"deterministically; `help` lists commands")
    print(dbg.render_state())
    interactive = sys.stdin.isatty()
    while True:
        if interactive:
            print("(repro-debug) ", end="", flush=True)
        line = sys.stdin.readline()
        if not line:
            break
        words = line.split()
        if not words:
            continue
        cmd, rest = words[0], words[1:]
        if cmd in ("q", "quit", "exit"):
            break
        elif cmd in ("h", "help"):
            print("step | back | goto N | state | trace | "
                  "why TARGET | sig | checkpoints | save FILE | "
                  "load FILE | quit")
        elif cmd in ("s", "step"):
            dbg.step()
            print(dbg.render_state())
        elif cmd in ("b", "back"):
            dbg.back()
            print(dbg.render_state())
        elif cmd == "goto" and rest and rest[0].lstrip("-").isdigit():
            dbg.goto(int(rest[0]))
            print(dbg.render_state())
        elif cmd == "state":
            print(dbg.render_state())
        elif cmd == "trace":
            print(dbg.render_trace())
        elif cmd == "why" and rest:
            print(dbg.why(rest[0]))
        elif cmd == "sig":
            ok = dbg.signature() == dbg.full_signature[:dbg.at]
            print(f"signature prefix match: {ok}")
        elif cmd == "checkpoints":
            print(dbg.render_checkpoints())
        elif cmd == "save" and rest:
            try:
                print(dbg.save(rest[0]))
            except (OSError, CheckpointError) as err:
                print(f"save failed: {err}")
        elif cmd == "load" and rest:
            try:
                loaded = _open_checkpoint_session(rest[0])
            except (OSError, ValueError) as err:
                print(f"load failed: {err}")
            else:
                dbg = loaded
                print(dbg.render_state())
        else:
            print(f"unknown command {line.strip()!r} (try `help`)")
    return 0


def _open_checkpoint_session(path: str):
    """A debugger session over a saved checkpoint file."""
    from .obs import TimeTravelDebugger
    from .runtime.checkpoint import Checkpoint

    return TimeTravelDebugger.from_checkpoint(Checkpoint.load(path))


def cmd_debug(args) -> int:
    """Interactive time-travel REPL (see docs/OBSERVABILITY.md)."""
    from .obs import TimeTravelDebugger

    if args.from_checkpoint:
        return _debug_repl(_open_checkpoint_session(args.from_checkpoint),
                           args.from_checkpoint)
    if not args.file:
        print("repro debug: a FILE or --from-checkpoint is required",
              file=sys.stderr)
        return 2
    source = _load(args.file)
    script = _load_script(args.inputs_file) if args.inputs_file else []
    dbg = TimeTravelDebugger(source, script, filename=args.file)
    return _debug_repl(dbg, args.file)


def cmd_postmortem(args) -> int:
    """Inspect a black-box bundle — or list a directory of them."""
    from .runtime.checkpoint import (MANIFEST_NAME, list_postmortems,
                                     load_postmortem)

    path = Path(args.bundle)
    if path.is_dir() and not (path / MANIFEST_NAME).exists():
        bundles = list_postmortems(path)
        if not bundles:
            print(f"{path}: no postmortem bundles", file=sys.stderr)
            return 1
        for m in bundles:
            b = m.get("boundary", {})
            print(f"{m['bundle']}: [{m.get('reason')}] "
                  f"{m.get('program') or '?'} — reaction "
                  f"{b.get('reactions')} at {b.get('clock_us')}us"
                  + (f" ({m['created_at']})" if m.get("created_at")
                     else ""))
        return 0
    try:
        bundle = load_postmortem(path)
    except (OSError, ValueError) as err:
        print(f"repro postmortem: {err}", file=sys.stderr)
        return 1
    if args.debug or args.why:
        from .obs import TimeTravelDebugger

        dbg = TimeTravelDebugger.from_checkpoint(bundle.checkpoint)
        if args.why:
            print(dbg.why(args.why, steps=args.steps))
            return 0
        return _debug_repl(dbg, str(path))
    print(bundle.describe())
    print(f"  {bundle.checkpoint.describe()}")
    detail = bundle.manifest.get("detail")
    if detail:
        rendered = json.dumps(detail, sort_keys=True, default=repr)
        print(f"  detail: {rendered}")
    fleet = bundle.fleet()
    if fleet:
        merged = fleet.get("merged", {})
        print(f"  fleet at capture: {fleet.get('instances')} live / "
              f"{fleet.get('spawned')} spawned, "
              f"{merged.get('counters', {}).get('reactions_total', 0)} "
              f"reactions, sim now {fleet.get('now_us')}us")
    slice_text = bundle.slice_text()
    if slice_text:
        print("--- causal slice of the last reaction ---")
        print(slice_text.rstrip())
    lines = bundle.recorder_lines()
    if lines is not None:
        tail = lines[-args.tail:] if args.tail else lines
        print(f"--- flight recorder: last {len(tail)} of {len(lines)} "
              f"line(s) ---")
        for line in tail:
            print(line)
    print(f"(replay with `repro postmortem {path} --debug` or "
          f"`--why TARGET`)")
    return 0


def cmd_c(args) -> int:
    source = _load(args.file)
    bound = bind(parse(source, args.file))
    check_bounded(bound)
    abi = TARGET16 if args.target16 else HOST
    bounds = None
    if args.static_bounds:
        from .analysis import compute_bounds

        dfa = build_dfa(bound, max_states=args.max_states)
        bounds = compute_bounds(bound, dfa)
    compiled = compile_to_c(bound, abi=abi, with_main=not args.no_main,
                            name=Path(args.file).stem or "ceu",
                            bounds=bounds)
    if args.output:
        Path(args.output).write_text(compiled.code)
        print(f"wrote {args.output}: {compiled.n_tracks} tracks, "
              f"{compiled.n_gates} gates, {compiled.mem_size} mem bytes",
              file=sys.stderr)
    else:
        sys.stdout.write(compiled.code)
    return 0


def cmd_dot(args) -> int:
    source = _load(args.file)
    bound = bind(parse(source, args.file))
    if args.flow:
        sys.stdout.write(build_flow(bound).to_dot() + "\n")
        return 0
    dfa = build_dfa(bound, max_states=args.max_states)
    sys.stdout.write(dfa.to_dot(bound) + "\n")
    if dfa.conflicts:
        print(f"warning: {len(dfa.conflicts)} nondeterminism witness(es); "
              f"first: {dfa.conflicts[0].message()}", file=sys.stderr)
        return 1
    return 0


def cmd_layout(args) -> int:
    source = _load(args.file)
    bound = bind(parse(source, args.file))
    layout = build_layout(bound, TARGET16)
    gates = build_gates(bound)
    print(f"memory vector: {layout.total} bytes (16-bit target)")
    for sym in bound.variables:
        print(f"  +{layout.offset(sym):4d} {layout.size(sym):3d}B  "
              f"{sym.type} {sym.name}")
    print(f"gates: {gates.count}")
    for gate in gates.gates:
        event = f" ({gate.event})" if gate.event else ""
        print(f"  g{gate.id:<3d} {gate.kind}{event}")
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import PROFILES, FuzzRunner, has_gcc

    config = PROFILES[args.profile]
    if args.n is None and args.minutes is None:
        args.n = 100
    use_c = not args.no_c
    if use_c and not has_gcc():
        print("gcc not found: VM-vs-C oracle disabled "
              "(replay and analysis oracles still run)", file=sys.stderr)
    target = _load(args.target) if args.target else None
    runner = FuzzRunner(seed=args.seed, config=config, use_c=use_c,
                        fault=args.inject_fault, do_shrink=args.shrink,
                        report=args.report, profile=args.profile,
                        guided=args.guided, target=target,
                        corpus_max=args.corpus_max,
                        artifact_dir=args.artifact_dir,
                        use_semantics=(args.oracle == "semantics"))
    stats = runner.run(n=args.n, minutes=args.minutes)
    return 0 if stats.ok() else 1


def cmd_bench(args) -> int:
    from .bench import main as bench_main

    return bench_main(args)


def _parse_addr(spec: str) -> tuple[str, int]:
    """``:9464`` / ``127.0.0.1:9464`` / ``9464`` → (host, port)."""
    host, _, port = spec.rpartition(":")
    if not port.isdigit():
        raise ValueError(f"not a HOST:PORT address: {spec!r}")
    return host or "127.0.0.1", int(port)


def _serve_farm(args, source: str, name: str) -> int:
    """``repro farm --serve``: wall-clock drive + HTTP telemetry plane,
    draining gracefully on SIGTERM/SIGINT (docs/OBSERVABILITY.md)."""
    import signal

    from .obs import (AdminServer, FlightRecorder, LineTee, Profiler,
                      StreamingJsonlExporter, write_prom)
    from .runtime.farm import Farm
    from .runtime.wallclock import WallClockDriver

    host, port = _parse_addr(args.serve)
    stream = recorder = None
    if args.jsonl:
        stream = StreamingJsonlExporter(args.jsonl, flush_every=1024)
    if args.flight_recorder:
        recorder = FlightRecorder(args.flight_recorder)
    tee = LineTee()
    profiler = Profiler(source=source)
    record = args.record or bool(args.postmortem_dir)
    farm = Farm(source, n=args.instances, program=name,
                observe=not args.detached, stream=stream,
                recorder=recorder, sinks=[tee], subscribers=[profiler],
                record=record, postmortem_dir=args.postmortem_dir)
    driver = WallClockDriver(farm, speed=args.speed)
    checkpoint_fn = postmortems_fn = None
    if record:
        ck_dir = Path(args.postmortem_dir) if args.postmortem_dir \
            else None

        def checkpoint_fn(instance: int) -> dict:
            ck = farm.checkpoint(instance)
            body = {"instance": instance, "describe": ck.describe(),
                    "boundary": ck.boundary}
            if ck_dir is not None:
                ck_dir.mkdir(parents=True, exist_ok=True)
                dest = ck_dir / (f"checkpoint-{name}-i{instance}"
                                 f"-r{ck.reaction_count}.json")
                ck.save(dest)
                body["path"] = str(dest)
            return body
    if args.postmortem_dir:
        from .runtime.checkpoint import list_postmortems

        def postmortems_fn() -> list:
            return list_postmortems(args.postmortem_dir)
    server = AdminServer(driver.snapshot, health_fn=farm.watchdog,
                         ready_fn=lambda: driver.running, events=tee,
                         flamegraph_fn=profiler.collapsed,
                         checkpoint_fn=checkpoint_fn,
                         postmortems_fn=postmortems_fn,
                         lock=driver.lock, host=host, port=port).start()
    print(f"{args.file}: {args.instances} instance(s) of {name} — "
          f"serving telemetry on {server.address} "
          f"(speed {args.speed:g}x)", flush=True)

    def _on_signal(signum, frame):
        driver.stop()

    old = {s: signal.signal(s, _on_signal)
           for s in (signal.SIGINT, signal.SIGTERM)}
    try:
        until = parse_time(args.until) if args.until else None
        driver.run(until_us=until)
    finally:
        for s, handler in old.items():
            signal.signal(s, handler)
    # graceful drain: stop routing (readyz 503), align the fleet, emit
    # one final snapshot, flush the exporter, then stop accepting
    server.draining.set()
    driver.drain(until_us=until)
    with driver.lock:
        snap = farm.fleet_snapshot()
        snap["watchdog"] = farm.watchdog()
    if args.snapshot:
        Path(args.snapshot).write_text(
            json.dumps(snap, indent=2, sort_keys=True, default=repr)
            + "\n")
        print(f"wrote {args.snapshot}", file=sys.stderr)
    if args.prom:
        n = write_prom(snap, args.prom)
        print(f"wrote {args.prom}: {n} exposition lines",
              file=sys.stderr)
    farm.close()
    server.close()
    merged = snap["merged"]
    print(f"drained at {snap['now_us']}us: {snap['instances']} live / "
          f"{snap['spawned']} spawned, "
          f"{merged['counters'].get('reactions_total', 0)} reactions, "
          f"{len(snap['watchdog']['flagged'])} watchdog flag(s)",
          flush=True)
    if stream is not None:
        print(f"wrote {args.jsonl}: {stream.seq} events streamed "
              f"(resident high {stream.resident_high})", file=sys.stderr)
    return 0


def cmd_farm(args) -> int:
    """N program instances over the DES kernel with fleet telemetry."""
    from .obs import FlightRecorder, StreamingJsonlExporter, write_prom
    from .runtime.farm import Farm

    source = _load(args.file)
    name = Path(args.file).stem or "prog"
    if args.serve is not None:
        return _serve_farm(args, source, name)
    stream = recorder = None
    if args.jsonl:
        stream = StreamingJsonlExporter(args.jsonl, flush_every=1024)
    if args.flight_recorder:
        recorder = FlightRecorder(args.flight_recorder)
    farm = Farm(source, n=args.instances, program=name,
                observe=not args.detached, stream=stream,
                recorder=recorder,
                record=args.record or bool(args.postmortem_dir),
                postmortem_dir=args.postmortem_dir)
    if args.workload:
        farm.run_script(_load_script(args.workload))
    if args.until:
        farm.run_until(parse_time(args.until))
    elif not args.workload:
        farm.run_until(parse_time("1s"))
    snap = farm.fleet_snapshot()
    report = farm.watchdog()
    farm.close()
    merged = snap["merged"]
    reactions = merged["counters"].get("reactions_total", 0)
    latency = merged["histograms"].get("reaction_latency_us", {})
    print(f"{args.file}: {snap['instances']} live / {snap['spawned']} "
          f"spawned instance(s) of {name}, now={snap['now_us']}us")
    print(f"  reactions: {reactions}  sim events fired: "
          f"{snap['sim']['events_fired']}")
    if latency.get("p99") is not None:
        print(f"  cross-instance reaction latency: "
              f"p50={latency['p50']:.0f}us p95={latency['p95']:.0f}us "
              f"p99={latency['p99']:.0f}us")
    flagged = report["flagged"]
    print(f"  watchdog: {len(flagged)} flagged"
          + (f" — first: instance {flagged[0]['instance']} "
             f"({flagged[0]['reason']})" if flagged else ""))
    captured = [f for f in flagged if f.get("postmortem")]
    if captured:
        print(f"  postmortems: {len(captured)} bundle(s) under "
              f"{args.postmortem_dir} — inspect with `repro postmortem`")
    if args.stats:
        print("--- fleet stats ---", file=sys.stderr)
        print(render_stats(merged), file=sys.stderr)
    if args.snapshot:
        Path(args.snapshot).write_text(
            json.dumps(snap, indent=2, sort_keys=True, default=repr)
            + "\n")
        print(f"wrote {args.snapshot}", file=sys.stderr)
    if args.prom:
        n = write_prom(snap, args.prom)
        print(f"wrote {args.prom}: {n} exposition lines",
              file=sys.stderr)
    if stream is not None:
        print(f"wrote {args.jsonl}: {stream.seq} events streamed "
              f"(resident high {stream.resident_high}, "
              f"{stream.rotations} rotation(s))", file=sys.stderr)
    return 0


def cmd_top(args) -> int:
    """Live fleet dashboard: remote ``/snapshot`` URL or an in-process
    wall-clock farm (docs/OBSERVABILITY.md, "repro top")."""
    import threading

    from .obs.top import Top, snapshot_url_source

    if args.target.startswith(("http://", "https://")):
        top = Top(snapshot_url_source(args.target),
                  interval_s=args.interval, title=args.target,
                  color=None if not args.no_color else False)
        painted = top.run(frames=args.frames)
        return 0 if painted else 1
    source = _load(args.target)
    name = Path(args.target).stem or "prog"
    from .runtime.farm import Farm
    from .runtime.wallclock import WallClockDriver

    farm = Farm(source, n=args.instances, program=name)
    driver = WallClockDriver(farm, speed=args.speed)
    thread = threading.Thread(target=driver.run, daemon=True)
    thread.start()
    top = Top(driver.snapshot, interval_s=args.interval,
              title=f"{name} ×{args.instances} (in-process)",
              color=None if not args.no_color else False)
    try:
        top.run(frames=args.frames)
    finally:
        driver.stop()
        thread.join(timeout=2)
    return 0


def cmd_federate(args) -> int:
    """Merge N shard ``/snapshot`` endpoints into one exposition —
    one-shot (``--once``) or served live (``--serve``)."""
    from .obs import AdminServer, Federator

    fed = Federator(args.shards, timeout_s=args.timeout,
                    min_interval_s=args.interval)
    if args.serve is None or args.once:
        n = fed.scrape(force=True)
        text = fed.render()
        if args.output:
            Path(args.output).write_text(text)
            print(f"wrote {args.output}: {text.count(chr(10))} "
                  f"exposition lines from {n}/{len(args.shards)} "
                  f"shard(s)", file=sys.stderr)
        else:
            sys.stdout.write(text)
        return 0 if n == len(args.shards) else 1

    import signal
    import threading

    host, port = _parse_addr(args.serve)

    def metrics() -> str:
        fed.scrape()
        return fed.render()

    server = AdminServer(fed.collect, metrics_fn=metrics,
                         host=host, port=port).start()
    print(f"federating {len(args.shards)} shard(s) on {server.address}",
          flush=True)
    stop = threading.Event()
    old = {s: signal.signal(s, lambda *a: stop.set())
           for s in (signal.SIGINT, signal.SIGTERM)}
    try:
        stop.wait()
    finally:
        for s, handler in old.items():
            signal.signal(s, handler)
    server.draining.set()
    server.close()
    print("federation stopped", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Céu reproduction: compiler, analyses, VM, C backend")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="run the static analyses")
    p.add_argument("file")
    p.add_argument("--max-states", type=int, default=20_000)
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "lint", help="full static analysis; text, JSON, or SARIF")
    p.add_argument("files", nargs="+", metavar="file")
    p.add_argument("--format", default="text",
                   choices=["text", "json", "sarif"],
                   help="output format (json: one report object per "
                        "file, a single object for a single file)")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the report here instead of stdout")
    p.add_argument("--max-states", type=int, default=20_000)
    p.add_argument("--no-witness", action="store_true",
                   help="skip witness-path construction for conflicts")
    p.add_argument("--no-verify", action="store_true",
                   help="build witnesses but skip their VM replay")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero when any error-severity "
                        "diagnostic fired (CI gating)")
    p.add_argument("--incremental", action="store_true",
                   help="run through the incremental analysis engine "
                        "(same output; exercises the LSP code path)")
    p.add_argument("--diff-base", metavar="FILE", default=None,
                   help="only report diagnostics on lines that changed "
                        "relative to this baseline file")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "lsp", help="run the LSP server over stdio (diagnostics, "
                    "hover bounds, go-to-definition)")
    p.set_defaults(fn=cmd_lsp)

    p = sub.add_parser("run", help="execute on the reference VM")
    p.add_argument("file")
    p.add_argument("inputs", nargs="*",
                   help="event inputs: NAME, NAME=VALUE, or @TIME "
                        "(e.g. Key=2 @1s Restart)")
    p.add_argument("--inputs", dest="inputs_file", metavar="FILE",
                   help="replay a script file first (one 'E NAME "
                        "[VALUE]' or 'T US' per line — the witness / "
                        "fuzz-driver format)")
    p.add_argument("--trace", action="store_true",
                   help="print the reaction trace to stderr")
    p.add_argument("--trace-json", metavar="FILE",
                   help="export a Chrome/Perfetto trace-event file")
    p.add_argument("--trace-jsonl", metavar="FILE",
                   help="export every hook event as JSON lines")
    p.add_argument("--stats", action="store_true",
                   help="collect metrics and print the snapshot")
    p.add_argument("--flight-recorder", type=int, nargs="?", const=4096,
                   default=None, metavar="N",
                   help="keep the last N hook events (default 4096) and "
                        "dump them to stderr if the run crashes")
    p.add_argument("--prom", metavar="FILE",
                   help="write the metrics snapshot as Prometheus text "
                        "exposition (implies metrics collection)")
    p.add_argument("--postmortem", metavar="DIR", default=None,
                   help="if the run crashes, write a black-box bundle "
                        "under DIR — a crash checkpoint parked one "
                        "reaction short of the failure, plus the "
                        "flight-recorder ring when --flight-recorder "
                        "is on (open with `repro postmortem`)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "why", help="print the causal slice of an occurrence")
    p.add_argument("file")
    p.add_argument("inputs", nargs="*",
                   help="event inputs: NAME, NAME=VALUE, or @TIME")
    p.add_argument("--inputs", dest="inputs_file", metavar="FILE",
                   help="replay a script file first (fuzz/witness format)")
    p.add_argument("--at", required=True, metavar="TARGET",
                   help="occurrence to explain: trail:LABEL, line:N, "
                        "event:NAME, reaction:N, or a bare name")
    p.add_argument("--steps", action="store_true",
                   help="include interpreter steps in the slice")
    p.add_argument("--diff", action="store_true",
                   help="replay a second configuration and print a "
                        "unified diff of the two causal slices "
                        "(normalized span ids; exit 1 when they differ)")
    p.add_argument("--diff-file", metavar="FILE",
                   help="program for the second replay "
                        "(default: same file)")
    p.add_argument("--diff-inputs", dest="diff_inputs_file",
                   metavar="FILE",
                   help="script file for the second replay "
                        "(default: same stimulus)")
    p.add_argument("--diff-at", metavar="TARGET",
                   help="target in the second replay "
                        "(default: same as --at)")
    p.add_argument("--diff-reverse-seeds", action="store_true",
                   help="second replay flips every intra-reaction "
                        "seeding order the semantics leaves open")
    p.set_defaults(fn=cmd_why)

    p = sub.add_parser(
        "debug", help="time-travel debugger (deterministic replay)")
    p.add_argument("file", nargs="?", default=None)
    p.add_argument("--inputs", dest="inputs_file", metavar="FILE",
                   help="stimulus script to replay (fuzz/witness format)")
    p.add_argument("--from-checkpoint", metavar="FILE", default=None,
                   help="reopen a saved checkpoint file (the REPL's "
                        "`save`, or a bundle's checkpoint.json) instead "
                        "of running a program")
    p.set_defaults(fn=cmd_debug)

    p = sub.add_parser(
        "postmortem",
        help="inspect a black-box postmortem bundle: summary, causal "
             "slice, flight-recorder tail — or open it in the "
             "time-travel REPL")
    p.add_argument("bundle",
                   help="bundle directory (from a watchdog capture or "
                        "`run --postmortem`); a directory *of* bundles "
                        "is listed instead")
    p.add_argument("--debug", action="store_true",
                   help="replay the bundle's checkpoint into the "
                        "time-travel REPL, parked at the captured "
                        "boundary")
    p.add_argument("--why", metavar="TARGET", default=None,
                   help="print the causal slice of TARGET at the "
                        "captured boundary (trail:LABEL, event:NAME, "
                        "reaction:N, ...)")
    p.add_argument("--steps", action="store_true",
                   help="include interpreter steps in --why slices")
    p.add_argument("--tail", type=int, default=20, metavar="N",
                   help="flight-recorder lines to print in the summary "
                        "view (default 20; 0 = all)")
    p.set_defaults(fn=cmd_postmortem)

    p = sub.add_parser("profile",
                       help="run fully instrumented; print metrics")
    p.add_argument("file")
    p.add_argument("inputs", nargs="*",
                   help="event inputs: NAME, NAME=VALUE, or @TIME")
    p.add_argument("--json", metavar="FILE",
                   help="write the raw metrics snapshot as JSON")
    p.add_argument("--trace-json", metavar="FILE",
                   help="also export a Chrome/Perfetto trace-event file")
    p.add_argument("--hot", type=int, nargs="?", const=10, default=None,
                   metavar="K",
                   help="print the hot-path report: per-trigger latency "
                        "percentiles plus the top-K lines and trails "
                        "(default K=10)")
    p.add_argument("--flamegraph", metavar="FILE",
                   help="write collapsed stacks (trigger;trail;kind:line "
                        "count) for flamegraph.pl / speedscope")
    p.add_argument("--stream", metavar="FILE",
                   help="stream every hook event to FILE as JSONL with "
                        "bounded memory (vs `run --trace-jsonl`, which "
                        "buffers)")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("c", help="emit the C translation")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.add_argument("--no-main", action="store_true")
    p.add_argument("--target16", action="store_true",
                   help="lay memory out for the 16-bit embedded target")
    p.add_argument("--static-bounds", action="store_true",
                   help="embed the DFA-derived resource bounds as "
                        "_Static_assert-checked capacity constants")
    p.add_argument("--max-states", type=int, default=20_000,
                   help="DFA budget for --static-bounds")
    p.set_defaults(fn=cmd_c)

    p = sub.add_parser("dot", help="emit graphviz (DFA, or --flow)")
    p.add_argument("file")
    p.add_argument("--flow", action="store_true")
    p.add_argument("--max-states", type=int, default=20_000)
    p.set_defaults(fn=cmd_dot)

    p = sub.add_parser("layout", help="print memory layout and gates")
    p.add_argument("file")
    p.set_defaults(fn=cmd_layout)

    p = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing (VM/C/spec/replay)")
    p.add_argument("--seed", type=int, default=0,
                   help="first seed; case i uses seed+i (default 0)")
    p.add_argument("--n", type=int, default=None, metavar="N",
                   help="number of cases (default 100 unless --minutes)")
    p.add_argument("--minutes", type=float, default=None, metavar="M",
                   help="time budget; stops after M minutes")
    p.add_argument("--shrink", action="store_true",
                   help="delta-debug every failure to a minimal reproducer")
    p.add_argument("--report", metavar="FILE",
                   help="write a JSONL campaign report (obs exporter format)")
    p.add_argument("--profile", default="diff",
                   choices=["diff", "deep", "emit", "prio", "timer"],
                   help="generator weight profile (default: diff; "
                        "prio = §4.1 join-priority gadgets)")
    p.add_argument("--no-c", action="store_true",
                   help="skip the C backend even when gcc is available")
    p.add_argument("--oracle", default="default",
                   choices=["default", "semantics"],
                   help="'semantics' adds the executable reference "
                        "semantics as a third backend: every well-formed "
                        "case is also run on the spec machine and the "
                        "full trace signature compared (three-way "
                        "VM/C/spec diff with odd-one-out attribution)")
    p.add_argument("--inject-fault", default=None,
                   choices=["minus-to-plus", "drop-emit", "flat-prio"],
                   help="mutate the generated C to validate the oracles")
    p.add_argument("--guided", action="store_true",
                   help="coverage-guided seed scheduling: cases that "
                        "light new statement/edge coverage enter a "
                        "corpus and are mutated preferentially")
    p.add_argument("--target", metavar="FILE",
                   help="fuzz scripts against this fixed program instead "
                        "of generating programs")
    p.add_argument("--corpus-max", type=int, default=64,
                   help="guided-mode corpus bound (default 64)")
    p.add_argument("--artifact-dir", metavar="DIR",
                   help="write each failure's reproducer (.ceu, .script) "
                        "and a Perfetto trace with causal flow arrows "
                        "(.trace.json) here — CI uploads this directory")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "farm",
        help="run N program instances over the DES kernel with fleet "
             "telemetry")
    p.add_argument("file")
    p.add_argument("-n", "--instances", type=int, default=1000,
                   metavar="N", help="instance count (default 1000)")
    p.add_argument("--until", metavar="TIME", default=None,
                   help="drive the virtual clock to this time (µs or "
                        "TIME literal; default 1s when no --workload)")
    p.add_argument("--workload", metavar="SCRIPT",
                   help="fuzz/witness-format stimulus script: 'E NAME "
                        "[VALUE]' broadcasts to every instance, 'T US' "
                        "advances the virtual clock")
    p.add_argument("--stats", action="store_true",
                   help="print the cross-instance fleet rollup")
    p.add_argument("--snapshot", metavar="FILE",
                   help="write the full fleet snapshot as JSON")
    p.add_argument("--prom", metavar="FILE",
                   help="write the fleet snapshot as Prometheus text "
                        "exposition")
    p.add_argument("--jsonl", metavar="FILE",
                   help="stream every instance's hook events (tagged "
                        "'inst') to FILE with bounded memory")
    p.add_argument("--flight-recorder", type=int, nargs="?", const=4096,
                   default=None, metavar="N",
                   help="shared ring of the last N fleet events")
    p.add_argument("--record", action="store_true",
                   help="journal every top-level driver op so any "
                        "instance can be checkpointed (POST /checkpoint "
                        "under --serve) or warm-started")
    p.add_argument("--postmortem-dir", metavar="DIR", default=None,
                   help="watchdog-flagged instances write black-box "
                        "bundles here (checkpoint + flight-recorder "
                        "ring + causal slice + fleet snapshot; implies "
                        "--record); also enables GET /postmortems "
                        "under --serve")
    p.add_argument("--detached", action="store_true",
                   help="skip per-instance metrics (overhead baseline; "
                        "farm families and DES counters stay on)")
    p.add_argument("--serve", metavar="HOST:PORT", default=None,
                   help="drive the farm on the wall clock and serve the "
                        "telemetry plane over HTTP (/metrics /healthz "
                        "/readyz /snapshot /events /flamegraph; port 0 "
                        "binds an ephemeral port, printed on stdout); "
                        "--until bounds the run, otherwise SIGTERM/"
                        "SIGINT drains gracefully")
    p.add_argument("--speed", type=float, default=1.0,
                   help="wall-clock compression for --serve: virtual "
                        "time runs this many times faster than real "
                        "time (default 1.0)")
    p.set_defaults(fn=cmd_farm)

    p = sub.add_parser(
        "top",
        help="live ANSI fleet dashboard (reactions/s, latency "
             "percentiles, watchdog, per-shard rollup)")
    p.add_argument("target",
                   help="a /snapshot URL of a serving farm or "
                        "federator, or a .ceu file to boot in-process")
    p.add_argument("-n", "--instances", type=int, default=1000,
                   metavar="N",
                   help="instance count for in-process targets "
                        "(default 1000)")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="seconds between frames (default 1.0)")
    p.add_argument("--frames", type=int, default=None, metavar="K",
                   help="stop after K frames (default: until q/Ctrl-C)")
    p.add_argument("--speed", type=float, default=1.0,
                   help="wall-clock compression for in-process targets")
    p.add_argument("--no-color", action="store_true",
                   help="plain frames without ANSI escapes")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "federate",
        help="merge N shard /snapshot endpoints into one Prometheus "
             "exposition (cross-shard percentiles, shard labels, "
             "scrape/staleness self-metrics)")
    p.add_argument("shards", nargs="+", metavar="URL",
                   help="shard base URLs (http://host:port of a "
                        "`farm --serve`; /snapshot is appended)")
    p.add_argument("--serve", metavar="HOST:PORT", default=None,
                   help="serve the federated plane over HTTP instead "
                        "of printing once")
    p.add_argument("--once", action="store_true",
                   help="with --serve absent (or even present): one "
                        "sweep, print the exposition, exit non-zero "
                        "if any shard failed")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the exposition here instead of stdout")
    p.add_argument("--timeout", type=float, default=2.0, metavar="S",
                   help="per-shard scrape timeout (default 2s)")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="min seconds between upstream sweeps when "
                        "serving (default 1.0)")
    p.set_defaults(fn=cmd_federate)

    p = sub.add_parser("bench",
                       help="benchmark snapshot + perf regression gate")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="directory for the timestamped BENCH_*.json "
                        "(default: benchmarks/)")
    p.add_argument("--repeats", type=int, default=3,
                   help="best-of-N timing repeats (default 3)")
    p.add_argument("--check", action="store_true",
                   help="gate against the committed baseline: exact "
                        "counters, toleranced overhead ratios")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="baseline snapshot (default: "
                        "benchmarks/BENCH_baseline.json)")
    p.add_argument("--tolerance", type=float, default=0.5,
                   help="relative slack for overhead ratios (default 0.5)")
    p.add_argument("--update-baseline", action="store_true",
                   help="write this snapshot as the new baseline")
    p.add_argument("--farm", action="store_true",
                   help="also measure the reactor farm (attached vs "
                        "detached; recorded as benchmarks/BENCH_farm.json"
                        ", never gated)")
    p.add_argument("--analysis", action="store_true",
                   help="also measure incremental-vs-cold lint latency "
                        "(recorded as benchmarks/BENCH_analysis.json, "
                        "never gated)")
    p.add_argument("--serve", action="store_true",
                   help="also measure the telemetry-plane serving-path "
                        "overhead on a detached farm (recorded as "
                        "benchmarks/BENCH_serve.json; the idle-server "
                        "drive ratio is gated at <= 5%%)")
    p.add_argument("--checkpoint", action="store_true",
                   help="also measure the checkpoint plane: journal-"
                        "recording overhead on the farm drive loop "
                        "(gated <= 5%%) and warm-start speedup vs a "
                        "cold instrumented boot (gated >= 5x); recorded "
                        "as benchmarks/BENCH_checkpoint.json")
    p.set_defaults(fn=cmd_bench)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except CeuError as err:
        print(str(err), file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
