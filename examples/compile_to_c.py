#!/usr/bin/env python3
"""Compile a Céu program to C (§4.4) and, when gcc is available, build and
drive the generated binary — showing that the single-threaded C output
behaves exactly like the reference VM.

Run:  python examples/compile_to_c.py
"""

import shutil
import subprocess
import tempfile
from pathlib import Path

from repro.core import compile_source

SOURCE = r"""
input int A, B;
int ret;
loop do
   par/or do
      int a = await A;
      int b = await B;
      ret = a + b;
      break;
   with
      await 1s;
      _printf("timeout, restarting\n");
   end
end
_printf("ret = %d\n", ret);
return ret;
"""

SCRIPT = "T 1000000\nE A 40\nE B 2\n"


def main() -> None:
    unit = compile_source(SOURCE)
    compiled = unit.to_c(name="demo")
    print(f"{compiled.n_tracks} tracks, {compiled.n_gates} gates, "
          f"{compiled.mem_size} memory bytes")
    print("— flow graph (dot) —")
    print(unit.flow_graph().to_dot()[:400], "...\n")

    # run the same inputs on the reference VM
    program = unit.instantiate()
    program.start()
    program.advance("1s")
    program.send("A", 40)
    program.send("B", 2)
    print("VM output:      ", repr(program.output()), "result:",
          program.result)

    if shutil.which("gcc") is None:
        print("gcc not found — skipping native build")
        return
    with tempfile.TemporaryDirectory() as tmp:
        c_file = Path(tmp) / "demo.c"
        c_file.write_text(compiled.code)
        exe = Path(tmp) / "demo"
        subprocess.run(["gcc", "-O2", "-o", str(exe), str(c_file)],
                       check=True)
        out = subprocess.run([str(exe)], input=SCRIPT, capture_output=True,
                             text=True).stdout
        print("native output:  ", repr(out))


if __name__ == "__main__":
    main()
