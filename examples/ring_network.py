#!/usr/bin/env python3
"""The §3.1 WSN demo: a three-mote ring with failure handling.

Every mote runs the same Céu program (`src/repro/apps/ceu/ring.ceu`):
receive a message, show the counter on the leds, wait 1 s, increment and
forward.  A monitoring trail detects 5 s of silence and blinks the red
led; mote 0 retries the communication every 10 s.

The script boots the ring on the simulated TinyOS world, lets it run, then
kills a mote to demonstrate the network-down behaviour and recovery.

Run:  python examples/ring_network.py
"""

from repro.apps import load
from repro.platforms import TinyOsWorld


def fmt(us: int) -> str:
    return f"{us / 1e6:6.2f}s"


def main() -> None:
    world = TinyOsWorld(latency_us=5_000)
    for node in range(3):
        world.add_mote(node, load("ring"))
    world.boot()

    print("— normal operation (15 s) —")
    world.run_until(15_000_000)
    for node, mote in world.motes.items():
        values = [m.payload[0] for _, m in mote.received]
        print(f"mote {node}: received counters {values}")

    print("\n— mote 2 fails —")
    world.motes[2].fail()
    world.run_until(30_000_000)
    blinks = [t for t, _ in world.motes[0].leds.history
              if t > 21_000_000]
    print(f"mote 0 red-led activity after detection: "
          f"{len(blinks)} toggles "
          f"(first at {fmt(blinks[0]) if blinks else 'never'})")

    print("\n— mote 2 recovers —")
    world.motes[2].recover()
    world.run_until(60_000_000)
    late = [(t, m.payload[0]) for t, m in world.motes[2].received
            if t > 30_000_000]
    if late:
        t, value = late[0]
        print(f"ring restored: mote 2 received counter {value} at {fmt(t)}")
    total = sum(len(m.received) for m in world.motes.values())
    print(f"total messages delivered: {total}")


if __name__ == "__main__":
    main()
