#!/usr/bin/env python3
"""Dataflow with internal events (§2.2): mutual Celsius/Fahrenheit
constraints without dependency cycles, courtesy of the stack policy.

Run:  python examples/dataflow_temperature.py
"""

from repro.core import compile_source

SOURCE = r"""
input int SetC, SetF;
int tc, tf;
internal void tc_evt, tf_evt;
par do
   loop do             // tc → tf
      await tc_evt;
      tf = 9 * tc / 5 + 32;
      emit tf_evt;
   end
with
   loop do             // tf → tc
      await tf_evt;
      tc = 5 * (tf - 32) / 9;
      emit tc_evt;
   end
with
   loop do
      tc = await SetC;
      emit tc_evt;
      _printf("set C: %dC = %dF\n", tc, tf);
   end
with
   loop do
      tf = await SetF;
      emit tf_evt;
      _printf("set F: %dF = %dC\n", tf, tc);
   end
end
"""


def main() -> None:
    unit = compile_source(SOURCE)   # temporal analysis proves determinism
    program = unit.instantiate()
    program.start()
    for event, value in [("SetC", 100), ("SetF", 32), ("SetC", 37),
                         ("SetF", 451)]:
        program.send(event, value)
    print(program.output(), end="")


if __name__ == "__main__":
    main()
