#!/usr/bin/env python3
"""The §3.3 demo: Mario embedded unmodified in three environments.

1. plain play with scripted key presses;
2. record the gameplay, then replay it — frame-for-frame identical,
   because a Céu program's behaviour depends only on its input order;
3. replay *backwards*, presenting scene N, N-1, ... by silently
   fast-forwarding a fresh run for each scene.

Run:  python examples/mario_replay.py
"""

from repro.apps.envs import MarioScreen
from repro.apps.mario import (environment_backwards, environment_plain,
                              environment_replay)
from repro.platforms import SdlHost

KEYS = (12, 60)
STEPS = 150


def main() -> None:
    print("— environment 1: live play —")
    screen = MarioScreen()
    SdlHost(environment_plain(STEPS, KEYS),
            extra_env={**screen.env(), "KEYS": list(KEYS)}).run()
    print(f"{len(screen.frames)} frames; "
          f"first {screen.frames[0]} → last {screen.frames[-1]}")

    print("\n— environment 2: record + replay —")
    screen2 = MarioScreen()
    SdlHost(environment_replay(STEPS, KEYS, replays=2),
            extra_env={**screen2.env(), "KEYS": list(KEYS)}).run()
    n = len(screen2.frames) // 3
    original = screen2.frames[:n]
    replay_1 = screen2.frames[n:2 * n]
    replay_2 = screen2.frames[2 * n:]
    print(f"original == replay1 == replay2: "
          f"{original == replay_1 == replay_2} ({n} frames each)")

    print("\n— environment 3: backwards replay —")
    screen3 = MarioScreen()
    SdlHost(environment_backwards(40, (7,)),
            extra_env={**screen3.env(), "KEYS": [7]}).run()
    forward = screen3.frames[:41]
    backward = screen3.frames[41:]
    print(f"backward frames == reversed(forward): "
          f"{backward == list(reversed(forward[1:]))}")
    print(f"first backward scene (the final forward scene): {backward[0]}")


if __name__ == "__main__":
    main()
