#!/usr/bin/env python3
"""The §3.2 Arduino demo: the "ship" LCD game.

The Céu program (`src/repro/apps/ceu/ship.ceu`) mirrors the paper's CODE
1/2/3 fragments: attribute reset, the central loop (game steps in parallel
with key handling), the after-game animation, and a debounced analog key
generator feeding `emit Key` from an async block.

Run:  python examples/ship_game.py
"""

from repro.apps import load
from repro.apps.envs import ShipWorld
from repro.platforms import ArduinoBoard


def press(board: ArduinoBoard, at: str, level: int,
          release: str) -> list:
    return [(at, level), (release, 1023)]


def main() -> None:
    world = ShipWorld(seed=3)
    board = ArduinoBoard(load("ship"), extra_env=world.env())
    world.lcd = board.lcd

    # script the player's analog button: one press to start, a couple of
    # steering inputs, one press to restart after the crash
    steps = []
    steps += press(board, "1s", 100, "1200ms")      # start (UP)
    steps += press(board, "3s", 300, "3200ms")      # steer DOWN
    steps += press(board, "5s", 100, "5200ms")      # steer UP
    steps += press(board, "12s", 100, "12200ms")    # dismiss crash screen
    steps += press(board, "14s", 100, "14200ms")    # start next quest
    board.script_analog(0, steps)

    board.boot()
    board.run_for("25s", tick="25ms")

    print(f"map row 0: {world.map_rows[0]}")
    print(f"map row 1: {world.map_rows[1]}")
    print(f"{len(world.redraws)} redraws; game steps reached: "
          f"{[s for s, _, _ in world.redraws]}")
    games = sum(1 for s, _, _ in world.redraws if s == 0)
    print(f"games started: {games}")
    print("final LCD:")
    print(board.lcd.frames[-1][1])


if __name__ == "__main__":
    main()
