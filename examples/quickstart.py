#!/usr/bin/env python3
"""Quickstart: compile, statically analyse, and run a Céu program.

This is the paper's introductory example (§2): three trails share a
variable — one increments it every second, one resets it on an input
event, one prints every change, all coordinated by an internal event.

Run:  python examples/quickstart.py
"""

from repro.core import compile_source

SOURCE = r"""
input int Restart;      // an external event
internal void changed;  // an internal event
int v = 0;              // a variable
par do
   loop do              // 1st trail
      await 1s;
      v = v + 1;
      emit changed;
   end
with
   loop do              // 2nd trail
      v = await Restart;
      emit changed;
   end
with
   loop do              // 3rd trail
      await changed;
      _printf("v = %d\n", v);
   end
end
"""


def main() -> None:
    # 1. full compile pipeline: parse → bind → bounded-execution check →
    #    temporal analysis (raises NondeterminismError on races)
    unit = compile_source(SOURCE)
    print(f"analysis ok: {unit.dfa.state_count()} DFA states, "
          f"{unit.dfa.transition_count()} transitions")

    # 2. artifacts
    layout = unit.memory_layout()
    gates = unit.gate_table()
    print(f"static memory: {layout.total} bytes; {gates.count} gates")

    # 3. execute on the reference VM
    program = unit.instantiate()
    program.start()
    program.advance("1s")          # v = 1
    program.advance("1s")          # v = 2
    program.send("Restart", 10)    # v = 10
    program.advance("1s")          # v = 11
    print("program output:")
    print(program.output(), end="")

    # 4. the same program also compiles to single-threaded C (§4.4)
    compiled = unit.to_c(name="quickstart")
    print(f"generated C: {len(compiled.code.splitlines())} lines, "
          f"{compiled.n_tracks} tracks")


if __name__ == "__main__":
    main()
