#!/usr/bin/env python3
"""The §5.2 experiment: synchronous vs asynchronous blinking.

Two leds at 400 ms and 1000 ms should co-light every 2 s.  Céu's
deadline-chained timers keep them aligned forever; the naive preemptive
(MantisOS-style) and message-passing (occam-style) implementations drift.

Run:  python examples/blink_comparison.py
"""

from repro.eval import blink


def main() -> None:
    results = blink.experiment(duration_us=300_000_000)  # 5 minutes
    print(blink.render(results))
    print()
    for result in results:
        bar = "#" * int(result.sync_ratio * 40)
        print(f"{result.system:18} |{bar:<40}| "
              f"{result.synchronized}/{result.boundaries} boundaries in sync")


if __name__ == "__main__":
    main()
