"""Figure 1 (`fig:reaction`): the four-reaction scenario of §2."""

from conftest import publish

from repro.eval import figures


def test_fig1_reaction_chains(benchmark):
    result = benchmark(figures.figure1)
    lines = [f"{trigger:12} trails={n}"
             + ("  (discarded)" if discarded else "")
             for trigger, n, discarded in result.reaction_summary()]
    lines.append(f"terminated before C: {result.terminated_before_c}")
    lines.append(result.trace.render())
    publish("fig1_reaction_chains", "\n".join(lines))

    summary = result.reaction_summary()
    assert summary[1] == ("event:A", 2, False)   # A awakes trails 1 and 3
    assert summary[2][2] is True                  # second A discarded
    assert result.terminated_before_c             # C never handled
