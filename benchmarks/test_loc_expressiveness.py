"""The conclusion's expressiveness claim: Céu needs roughly half the
lines of the event-driven (nesC-style) implementations."""

from conftest import publish

from repro.eval import loc


def test_loc_expressiveness(benchmark):
    rows = benchmark(loc.loc_table)
    publish("loc_expressiveness", loc.render(rows))

    total_ceu = sum(r.ceu for r in rows)
    total_nesc = sum(r.nesc for r in rows)
    # the complex apps (where callbacks hurt) carry the claim
    assert total_ceu / total_nesc < 0.75
    client = next(r for r in rows if r.app == "Client")
    assert client.ratio < 0.7
