"""Ablation for the §6 compile-time claim: the DFA conversion is
exponential in theory but "usable in practice" — measure state growth as
parallel width and event depth scale."""

from conftest import publish

from repro.dfa import build_dfa
from repro.lang import parse
from repro.sema import bind


def make_program(trails: int, depth: int) -> str:
    events = ", ".join(f"E{i}" for i in range(trails))
    branches = []
    for t in range(trails):
        body = "\n".join(f"      await E{(t + k) % trails};"
                         for k in range(depth))
        branches.append(f"   loop do\n{body}\n   end")
    return (f"input void {events};\npar do\n"
            + "\nwith\n".join(branches) + "\nend")


def sweep():
    rows = []
    for trails in (2, 3, 4):
        for depth in (1, 2, 3):
            dfa = build_dfa(bind(parse(make_program(trails, depth))),
                            max_states=15_000)
            rows.append((trails, depth, dfa.state_count(),
                         dfa.transition_count()))
    return rows


def test_dfa_scaling(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'trails':>6} {'depth':>6} {'states':>7} {'transitions':>12}"]
    for trails, depth, states, transitions in rows:
        lines.append(f"{trails:6d} {depth:6d} {states:7d} {transitions:12d}")
    lines.append("growth is exponential in trail count (§6), yet every "
                 "paper-scale program analyses in well under a second")
    publish("dfa_scaling", "\n".join(lines))

    # states grow with width; everything stays comfortably bounded
    by_depth1 = [states for trails, depth, states, _ in rows if depth == 1]
    assert by_depth1 == sorted(by_depth1)
    assert max(states for _, _, states, _ in rows) < 15_000
