"""Ablations of the two load-bearing runtime design choices.

1. **Join priorities (§4.1)** — "the priority scheme is needed to avoid
   glitches during runtime".  Disabling it lets a par/or continuation run
   before concurrently-awakened trails have reacted, observing stale
   state — the FRP glitch.
2. **Residual-delta compensation (§2.3)** — timers re-armed from their
   logical expiry instead of the observed clock.  Disabling it makes a
   periodic loop driven by a sloppy binding silently stretch its period.
"""

from conftest import publish

from repro.runtime import Program

GLITCH_PROBE = """
input void A;
int x = 0;
int y = 9;
par do
   par/or do
      await A;
   with
      await forever;
   end
   y = x;            // must observe the x written in the same reaction
with
   par/and do
      await A;
      par/and do
         x = 5;      // deferred into a spawned trail
      with
         nothing;
      end
   with
      nothing;
   end
end
"""

PERIODIC = """
int n = 0;
par/or do
   loop do
      await 400ms;
      n = n + 1;
   end
with
   await 60s;
end
return n;
"""


def glitch_value(glitch_free: bool) -> int:
    p = Program(GLITCH_PROBE, glitch_free=glitch_free)
    p.start()
    p.send("A")
    return p.sched.memory.snapshot()["y"]


def tick_count(compensate: bool) -> int:
    p = Program(PERIODIC, compensate_deltas=compensate)
    p.start()
    t = 0
    while t < 60_000_000 and not p.done:
        t += 7_300                   # a busy, sloppy time driver
        p.at(min(t, 60_000_000))
    return p.result if p.done else -1


def run_ablations():
    return {
        "glitch_free": glitch_value(True),
        "glitchy": glitch_value(False),
        "compensated_ticks": tick_count(True),
        "naive_ticks": tick_count(False),
    }


def test_ablation_design_choices(benchmark):
    r = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    text = (
        "join priorities (§4.1):\n"
        f"  with priorities   : continuation observes x = {r['glitch_free']}"
        " (consistent)\n"
        f"  without priorities: continuation observes x = {r['glitchy']}"
        " (glitch — stale read)\n"
        "residual deltas (§2.3), 400 ms loop for 60 s under a 7.3 ms-"
        "granularity driver:\n"
        f"  compensated: {r['compensated_ticks']} ticks (ideal 150)\n"
        f"  naive      : {r['naive_ticks']} ticks (period stretches)\n")
    publish("ablation_design_choices", text)

    assert r["glitch_free"] == 5
    assert r["glitchy"] == 0          # the glitch the paper designs against
    assert r["compensated_ticks"] == 150
    assert r["naive_ticks"] < 150
