"""The §4.1 flow graph (`fig:nfa`) of the guiding example, with the
outer-construct-gets-lower-priority join ordering."""

from conftest import publish

from repro.eval import figures


def test_fig3_flow_graph(benchmark):
    result = benchmark(figures.figure3)
    text = (f"nodes: {len(result.graph.nodes)}, "
            f"edges: {len(result.graph.edges)}, "
            f"awaits: {len(result.graph.await_nodes())}\n"
            f"join priorities (larger = runs later): "
            f"{result.join_priorities}\n\n{result.dot}")
    publish("fig3_flowgraph", text)

    priorities = dict(result.join_priorities)
    assert priorities["loop-end"] > priorities["par/or-join"] \
        > priorities["par/and-join"]
    assert len(result.graph.await_nodes()) == 4
