"""§1's footprint claim: the Céu runtime needs ~4 KB ROM / ~100 B RAM on a
16-bit platform, before application code."""

from conftest import publish

from repro.codegen import CEU_RAM_KERNEL, CEU_ROM_KERNEL, ceu_footprint
from repro.lang import parse
from repro.sema import bind


def minimal_footprint():
    bound = bind(parse("input void A;\nawait A;"))
    return ceu_footprint(bound)


def test_runtime_footprint(benchmark):
    fp = benchmark(minimal_footprint)
    text = (f"minimal program: {fp}\n"
            f"runtime kernel constants: ROM={CEU_ROM_KERNEL}B "
            f"RAM={CEU_RAM_KERNEL}B\n"
            f"paper claim: ~4KB ROM, ~100B RAM (§1)")
    publish("runtime_footprint", text)

    assert 3_000 <= CEU_ROM_KERNEL <= 5_000
    assert 64 <= CEU_RAM_KERNEL <= 160
    assert fp.rom < 6_000
