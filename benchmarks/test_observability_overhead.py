"""Observability ablation: cost of the hook bus.

Three configurations of the same reaction-heavy workload:

* **off** — no subscribers (the shipping default): the only added work is
  one ``hooks.enabled`` check per potential event;
* **metrics** — the metrics collector attached;
* **full** — metrics + Chrome-trace + JSONL exporters.

The benchmark asserts the paper-preserving property: *disabled*
instrumentation must be within noise of the seed VM (< 5 % is enforced by
the acceptance harness on ``test_vm_throughput``; here we additionally
print the enabled-path cost so regressions in the observers themselves
show up in the perf trajectory).
"""

import time

from conftest import publish, record_metrics

from repro.obs import ChromeTraceExporter, JsonlExporter
from repro.runtime import Program

from test_vm_throughput import make_fanout

TRAILS = 16
EVENTS = 300


def run_once(mode: str) -> float:
    program = Program(make_fanout(TRAILS), observe=mode != "off")
    if mode == "full":
        program.observe(ChromeTraceExporter())
        program.observe(JsonlExporter())
    start = time.perf_counter()
    program.start()
    for _ in range(EVENTS):
        program.send("A")
    elapsed = time.perf_counter() - start
    if mode == "metrics":
        record_metrics("observability_overhead", program.stats())
    return elapsed


def test_observability_overhead(benchmark):
    timings = {mode: min(run_once(mode) for _ in range(3))
               for mode in ("off", "metrics", "full")}
    benchmark(run_once, "off")
    rows = [f"{mode:8s} {secs * 1e3:8.2f} ms  "
            f"(x{secs / timings['off']:.2f} vs off)"
            for mode, secs in timings.items()]
    publish("observability_overhead", "\n".join(rows))
    # observers cost something, but must stay within an order of magnitude
    assert timings["full"] < timings["off"] * 10
