"""Observability ablation: cost of the hook bus.

Four configurations of the same reaction-heavy workload:

* **off** — no subscribers, ever (the shipping default): the only added
  work is one ``hooks.enabled`` check per potential event;
* **detached** — a subscriber attached and then removed before the run:
  the bus must fall back to exactly the off fast path (this is what a
  long-running system looks like after a profiling session ends);
* **metrics** — the metrics collector attached;
* **full** — metrics + Chrome-trace + JSONL exporters.

The benchmark asserts the paper-preserving property the seed VM was
measured under: the hooks-off fast path must stay within noise of a VM
that never grew a hook bus.  ``off ≈ detached`` is the empirical pin —
both run the identical guarded no-op path, so any spread between them
(beyond scheduler noise) means state from past subscribers leaks into
the disabled path.
"""

import time

from conftest import publish, record_metrics

from repro.obs import ChromeTraceExporter, JsonlExporter, Profiler
from repro.runtime import Program

from test_vm_throughput import make_fanout

TRAILS = 16
EVENTS = 300


def run_once(mode: str) -> float:
    program = Program(make_fanout(TRAILS),
                      observe=mode in ("metrics", "full"))
    if mode == "full":
        program.observe(ChromeTraceExporter())
        program.observe(JsonlExporter())
    elif mode == "detached":
        probe = program.observe(Profiler())
        program.hooks.unsubscribe(probe)
        assert not program.hooks.enabled
    start = time.perf_counter()
    program.start()
    for _ in range(EVENTS):
        program.send("A")
    elapsed = time.perf_counter() - start
    if mode == "metrics":
        record_metrics("observability_overhead", program.stats())
    return elapsed


def test_observability_overhead(benchmark):
    timings = {mode: min(run_once(mode) for _ in range(5))
               for mode in ("off", "detached", "metrics", "full")}
    benchmark(run_once, "off")
    rows = [f"{mode:8s} {secs * 1e3:8.2f} ms  "
            f"(x{secs / timings['off']:.2f} vs off)"
            for mode, secs in timings.items()]
    publish("observability_overhead", "\n".join(rows))
    # observers cost something, but must stay within an order of magnitude
    assert timings["full"] < timings["off"] * 10


def test_hooks_off_fast_path_within_noise_of_seed_vm(benchmark):
    """The pin ISSUE 4 asks for: with no (or no remaining) subscribers,
    the instrumented VM must match seed-VM throughput.  Both modes
    execute the identical guarded fast path, so a generous 1.5x bound
    catches real regressions (an accidentally-enabled bus costs 3-10x)
    without flaking on scheduler noise."""
    off = min(run_once("off") for _ in range(5))
    detached = min(run_once("detached") for _ in range(5))
    benchmark(run_once, "detached")
    publish("hooks_off_fast_path",
            f"off      {off * 1e3:8.2f} ms\n"
            f"detached {detached * 1e3:8.2f} ms  (x{detached / off:.2f})")
    assert detached < off * 1.5
    assert off < detached * 1.5
