"""Figure 2 (`fig:dfa`): the temporal analysis refusing the §2.6 program
on the sixth occurrence of `A`."""

from conftest import publish

from repro.eval import figures


def test_fig2_dfa(benchmark):
    result = benchmark(figures.figure2)
    text = (f"states: {result.dfa.state_count()}\n"
            f"transitions: {result.dfa.transition_count()}\n"
            f"conflict state: #{result.conflict_state}\n"
            f"occurrences of A to reach the race: "
            f"{result.occurrences_to_conflict}\n"
            f"first witness: {result.dfa.conflicts[0].message()}\n\n"
            f"{result.dot}")
    publish("fig2_dfa", text)

    assert result.detected
    # the paper's DFA flags the race after six As (state #8 in its fig.)
    assert result.occurrences_to_conflict == 6
