"""Ablation: reaction-chain throughput of the reference VM as the number
of parallel trails grows (the paper claims trail bookkeeping is
negligible, promoting fine-grained trails, §2.1)."""

from conftest import publish, record_metrics

from repro.runtime import Program


def make_fanout(n: int) -> str:
    decls = "\n".join(f"int n{i} = 0;" for i in range(n))
    if n == 1:
        return (f"input void A;\n{decls}\n"
                f"loop do\n   await A;\n   n0 = n0 + 1;\nend")
    branches = "\nwith\n".join(
        f"   loop do\n      await A;\n      n{i} = n{i} + 1;\n   end"
        for i in range(n))
    return f"input void A;\n{decls}\npar do\n{branches}\nend"


def run_reactions(trails: int, events: int = 200,
                  observe: bool = False) -> int:
    program = Program(make_fanout(trails), observe=observe)
    program.start()
    for _ in range(events):
        program.send("A")
    if observe:
        record_metrics(f"vm_throughput_{trails}trails", program.stats())
    return program.sched.reaction_count


def test_vm_throughput(benchmark):
    rows = []
    for trails in (1, 8, 64):
        reactions = run_reactions(trails)
        rows.append((trails, reactions))
    run_reactions(64, observe=True)   # metrics snapshot for BENCH_*.json
    benchmark(run_reactions, 64, 50)
    text = "\n".join(f"{t:3d} trails: {r} reactions"
                     for t, r in rows)
    publish("vm_throughput", text)
    assert all(r == 201 for _, r in rows)
