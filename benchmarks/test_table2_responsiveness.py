"""Table 2 (`tab:resp`): responsiveness under load, Céu vs MantisOS (§4.6)."""

from conftest import publish

from repro.eval import table2


def test_table2_responsiveness(benchmark):
    results = benchmark.pedantic(table2.table2, rounds=1, iterations=1)
    publish("table2_responsiveness", table2.render(results))

    by_cell = {(r.system, r.senders, r.loops): r for r in results}
    # every cell within 5% of the paper
    for key, result in by_cell.items():
        paper = table2.PAPER[key]
        assert abs(result.total_s - paper) / paper < 0.05, (key, result)
    # adding 5 infinite loops is negligible (the paper's point)
    for system in ("Céu", "MantisOS"):
        for senders in (1, 2):
            base = by_cell[(system, senders, False)].total_s
            loaded = by_cell[(system, senders, True)].total_s
            assert loaded - base < 0.3
    # 2 senders: Céu (TinyOS backend) outpaces MantisOS
    assert by_cell[("Céu", 2, False)].total_s < \
        by_cell[("MantisOS", 2, False)].total_s
