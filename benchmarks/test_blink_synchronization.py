"""§5.2: the 400/1000 ms blinkers — synchronous Céu vs asynchronous
RTOS/occam implementations (two simulated minutes)."""

from conftest import publish

from repro.eval import blink


def test_blink_synchronization(benchmark):
    results = benchmark.pedantic(blink.experiment,
                                 kwargs={"duration_us": 120_000_000},
                                 rounds=1, iterations=1)
    publish("blink_synchronization", blink.render(results))

    ceu, mantis, occam = results
    assert ceu.sync_ratio == 1.0
    assert ceu.max_drift_us <= 8_000          # bounded by the driver step
    assert mantis.sync_ratio < 0.5
    assert occam.sync_ratio < 0.5
    assert mantis.max_drift_us > 10 * ceu.max_drift_us
