"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures; besides the
timing collected by pytest-benchmark, each prints the regenerated rows so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.  The printed tables are also written to
``benchmarks/out/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"
OUT_DIR.mkdir(exist_ok=True)


def publish(name: str, text: str) -> None:
    """Print a regenerated artifact and persist it for the write-up."""
    banner = f"\n===== {name} ====="
    print(banner)
    print(text)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
