"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures; besides the
timing collected by pytest-benchmark, each prints the regenerated rows so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.  The printed tables are also written to
``benchmarks/out/`` for EXPERIMENTS.md.

Benchmarks may also call :func:`record_metrics` with an observability
snapshot (``program.stats()``); everything recorded during the session is
written to ``benchmarks/BENCH_observability.json`` when the session ends
— the machine-readable perf trajectory the ROADMAP's "fast as the
hardware allows" goal is tracked against.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"
OUT_DIR.mkdir(exist_ok=True)

BENCH_JSON = Path(__file__).parent / "BENCH_observability.json"

_METRICS: dict[str, dict] = {}


def publish(name: str, text: str) -> None:
    """Print a regenerated artifact and persist it for the write-up."""
    banner = f"\n===== {name} ====="
    print(banner)
    print(text)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def record_metrics(name: str, stats: dict) -> None:
    """Stash one run's metrics snapshot for ``BENCH_observability.json``."""
    _METRICS[name] = stats


def pytest_sessionfinish(session, exitstatus) -> None:
    if not _METRICS:
        return
    payload = {
        "python": platform.python_version(),
        "runs": {name: _METRICS[name] for name in sorted(_METRICS)},
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, default=repr)
                          + "\n")
