"""Table 1 (`tab:eval`): ROM/RAM of the four apps, Céu vs nesC (§4.6)."""

from conftest import publish

from repro.eval import table1


def test_table1_memory_usage(benchmark):
    rows = benchmark(table1.table1)
    publish("table1_memory", table1.render(rows))

    # the paper's qualitative findings
    for row in rows:
        assert row.ceu_rom > row.nesc_rom
        assert row.ceu_ram > row.nesc_ram
    diffs = [r.diff_rom for r in rows]
    assert diffs == sorted(diffs, reverse=True), \
        "the Céu−nesC gap must shrink as apps grow"
    rel = [r.rel_rom_overhead for r in rows]
    assert rel == sorted(rel, reverse=True)
